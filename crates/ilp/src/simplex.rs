//! Two-phase primal simplex with bounded variables.
//!
//! Dense-tableau implementation: the partitioning LPs are small-to-medium
//! (hundreds to a few thousand variables after Wishbone's §4.1 merge
//! preprocessing), so a cache-friendly dense tableau beats a sparse revised
//! method at this scale while staying simple and auditable — the same
//! trade-off lp_solve's default path makes.
//!
//! Variable bounds `l ≤ x ≤ u` are handled natively (nonbasic variables sit
//! at either bound; the ratio test includes bound flips), which keeps the
//! tableau at `m × (n + m_slack + m_art)` instead of adding a row per bound.
//! Anti-cycling: Dantzig pricing with a Bland's-rule fallback after a run of
//! degenerate pivots.

use crate::problem::{LpSolution, Problem, Sense, SolveError};

const EPS: f64 = 1e-9;
/// Pivot elements smaller than this are considered numerically unusable.
const PIVOT_TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_LIMIT: u64 = 64;
/// Recompute reduced costs from scratch this often to bound drift.
const REFRESH_PERIOD: u64 = 512;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
}

/// Dense simplex state for one solve.
pub(crate) struct Simplex {
    m: usize,
    /// Total columns: structural + slack + artificial.
    n: usize,
    n_structural: usize,
    first_artificial: usize,
    /// Row-major `m × n` tableau, kept equal to `B⁻¹·A`.
    t: Vec<f64>,
    /// Transformed right-hand side (`B⁻¹·b`-style invariant).
    rhs: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    x: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    obj_row: Vec<f64>,
    iterations: u64,
    iteration_limit: u64,
    degenerate_run: u64,
}

impl Simplex {
    /// Build the tableau for `problem` with per-solve bound overrides
    /// (branch-and-bound tightens bounds without copying the problem).
    pub(crate) fn new(
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        iteration_limit: u64,
    ) -> Self {
        let n_structural = problem.num_vars();
        let m = problem.num_constraints();
        let n_slack: usize = problem
            .constraints
            .iter()
            .filter(|c| c.sense != Sense::Eq)
            .count();
        let n = n_structural + n_slack + m; // one artificial per row
        let first_artificial = n_structural + n_slack;

        let mut t = vec![0.0; m * n];
        let mut rhs = vec![0.0; m];
        let mut lo = vec![0.0; n];
        let mut up = vec![f64::INFINITY; n];
        lo[..n_structural].copy_from_slice(lower);
        up[..n_structural].copy_from_slice(upper);

        // Nonbasic structural variables start at their (finite) lower bound.
        let mut x = vec![0.0; n];
        x[..n_structural].copy_from_slice(&lo[..n_structural]);

        let mut status = vec![VarStatus::AtLower; n];
        let mut basis = Vec::with_capacity(m);

        let mut slack_col = n_structural;
        for (i, c) in problem.constraints.iter().enumerate() {
            let row = &mut t[i * n..(i + 1) * n];
            for &(v, a) in &c.terms {
                row[v.0] += a;
            }
            match c.sense {
                Sense::Le => {
                    row[slack_col] = 1.0;
                    slack_col += 1;
                }
                Sense::Ge => {
                    row[slack_col] = -1.0;
                    slack_col += 1;
                }
                Sense::Eq => {}
            }
            rhs[i] = c.rhs;
            // Residual with all nonbasic vars at their initial values
            // (slacks start at 0, structural at lower bound).
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let residual = c.rhs - lhs;
            let art = first_artificial + i;
            if residual >= 0.0 {
                row[art] = 1.0;
            } else {
                // Scale the row so the artificial's column is +1 and its
                // value |residual| is nonnegative.
                for v in row.iter_mut() {
                    *v = -*v;
                }
                row[art] = 1.0;
                rhs[i] = -rhs[i];
            }
            x[art] = residual.abs();
            status[art] = VarStatus::Basic;
            basis.push(art);
        }
        debug_assert_eq!(slack_col, first_artificial);

        Simplex {
            m,
            n,
            n_structural,
            first_artificial,
            t,
            rhs,
            basis,
            status,
            x,
            lower: lo,
            upper: up,
            cost: vec![0.0; n],
            obj_row: vec![0.0; n],
            iterations: 0,
            iteration_limit,
            degenerate_run: 0,
        }
    }

    /// `obj_row[j] = cost[j] - Σᵢ cost[basis[i]] · T[i][j]`
    fn recompute_obj_row(&mut self) {
        self.obj_row.copy_from_slice(&self.cost);
        for i in 0..self.m {
            let cb = self.cost[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            let row = &self.t[i * self.n..(i + 1) * self.n];
            for (o, &a) in self.obj_row.iter_mut().zip(row) {
                *o -= cb * a;
            }
        }
        for &b in &self.basis {
            self.obj_row[b] = 0.0;
        }
    }

    fn objective(&self) -> f64 {
        self.cost.iter().zip(&self.x).map(|(c, v)| c * v).sum()
    }

    /// Choose the entering column, or `None` at optimality.
    fn choose_entering(&self, bland: bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..self.n {
            let (dir, score) = match self.status[j] {
                VarStatus::Basic => continue,
                VarStatus::AtLower => {
                    let d = self.obj_row[j];
                    if d < -EPS {
                        (1.0, -d)
                    } else {
                        continue;
                    }
                }
                VarStatus::AtUpper => {
                    let d = self.obj_row[j];
                    if d > EPS {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
            };
            if bland {
                return Some((j, dir));
            }
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, dir, score));
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// One simplex iteration. `Ok(true)` = continue, `Ok(false)` = optimal.
    fn step(&mut self) -> Result<bool, SolveError> {
        let bland = self.degenerate_run > DEGENERATE_LIMIT;
        let Some((e, dir)) = self.choose_entering(bland) else {
            return Ok(false);
        };

        // Ratio test: how far can the entering variable move?
        let flip = self.upper[e] - self.lower[e]; // distance to its other bound
        let mut best_t = f64::INFINITY;
        let mut best_row: Option<usize> = None;
        let mut best_coef = 0.0f64;
        for i in 0..self.m {
            let coef = self.t[i * self.n + e];
            if coef.abs() < PIVOT_TOL {
                continue;
            }
            let xb = self.basis[i];
            let v = self.x[xb];
            let rate = -dir * coef; // d(x_b)/dt as the entering var moves
            let limit = if rate > 0.0 {
                if !self.upper[xb].is_finite() {
                    continue;
                }
                ((self.upper[xb] - v) / rate).max(0.0)
            } else {
                ((v - self.lower[xb]) / -rate).max(0.0)
            };
            let take = if limit < best_t - EPS {
                true
            } else if limit <= best_t + EPS {
                // Tie: prefer a numerically larger pivot (or the lowest row
                // index when Bland's rule is active).
                match best_row {
                    None => true,
                    Some(br) => {
                        if bland {
                            i < br
                        } else {
                            coef.abs() > best_coef
                        }
                    }
                }
            } else {
                false
            };
            if take {
                best_t = best_t.min(limit);
                best_row = Some(i);
                best_coef = coef.abs();
            }
        }

        if best_row.is_none() && !flip.is_finite() {
            return Err(SolveError::Unbounded);
        }

        if flip < best_t {
            // Bound flip: the entering variable hits its opposite bound
            // before any basic variable blocks; no basis change.
            self.apply_move(e, dir, flip);
            self.status[e] = match self.status[e] {
                VarStatus::AtLower => VarStatus::AtUpper,
                VarStatus::AtUpper => VarStatus::AtLower,
                VarStatus::Basic => unreachable!("entering var is nonbasic"),
            };
            self.x[e] = match self.status[e] {
                VarStatus::AtUpper => self.upper[e],
                _ => self.lower[e],
            };
            self.degenerate_run = if flip <= EPS {
                self.degenerate_run + 1
            } else {
                0
            };
            return Ok(true);
        }

        let r = best_row.expect("blocking row exists when flip does not apply");
        let t_star = best_t;
        self.apply_move(e, dir, t_star);
        let leaving = self.basis[r];
        // Snap the leaving variable exactly onto the bound it hit.
        let coef = self.t[r * self.n + e];
        let rate = -dir * coef;
        self.status[leaving] = if rate > 0.0 {
            self.x[leaving] = self.upper[leaving];
            VarStatus::AtUpper
        } else {
            self.x[leaving] = self.lower[leaving];
            VarStatus::AtLower
        };
        self.status[e] = VarStatus::Basic;
        self.basis[r] = e;
        self.pivot(r, e);
        self.degenerate_run = if t_star <= EPS {
            self.degenerate_run + 1
        } else {
            0
        };
        Ok(true)
    }

    /// Move entering variable `e` by `t` in direction `dir`, updating all
    /// basic values.
    fn apply_move(&mut self, e: usize, dir: f64, t: f64) {
        if t == 0.0 {
            return;
        }
        self.x[e] += dir * t;
        for i in 0..self.m {
            let coef = self.t[i * self.n + e];
            if coef != 0.0 {
                let xb = self.basis[i];
                self.x[xb] -= dir * t * coef;
            }
        }
    }

    /// Gauss–Jordan pivot on `(r, e)`, also updating `rhs` and `obj_row`.
    fn pivot(&mut self, r: usize, e: usize) {
        let n = self.n;
        let piv = self.t[r * n + e];
        debug_assert!(piv.abs() >= PIVOT_TOL * 0.5, "tiny pivot {piv}");
        let inv = 1.0 / piv;
        for v in self.t[r * n..(r + 1) * n].iter_mut() {
            *v *= inv;
        }
        self.rhs[r] *= inv;
        // Eliminate column e from every other row.
        let (before, rest) = self.t.split_at_mut(r * n);
        let (prow, after) = rest.split_at_mut(n);
        for (i, chunk) in before.chunks_exact_mut(n).enumerate() {
            let f = chunk[e];
            if f != 0.0 {
                for (a, &p) in chunk.iter_mut().zip(prow.iter()) {
                    *a -= f * p;
                }
                chunk[e] = 0.0;
                self.rhs[i] -= f * self.rhs[r];
            }
        }
        for (k, chunk) in after.chunks_exact_mut(n).enumerate() {
            let i = r + 1 + k;
            let f = chunk[e];
            if f != 0.0 {
                for (a, &p) in chunk.iter_mut().zip(prow.iter()) {
                    *a -= f * p;
                }
                chunk[e] = 0.0;
                self.rhs[i] -= f * self.rhs[r];
            }
        }
        let f = self.obj_row[e];
        if f != 0.0 {
            for (a, &p) in self.obj_row.iter_mut().zip(prow.iter()) {
                *a -= f * p;
            }
            self.obj_row[e] = 0.0;
        }
    }

    fn run_phase(&mut self) -> Result<(), SolveError> {
        loop {
            if self.iterations >= self.iteration_limit {
                return Err(SolveError::IterationLimit);
            }
            self.iterations += 1;
            if self.iterations.is_multiple_of(REFRESH_PERIOD) {
                self.recompute_obj_row();
            }
            if !self.step()? {
                return Ok(());
            }
        }
    }

    /// Solve both phases, returning the structural solution.
    pub(crate) fn solve(mut self, problem: &Problem) -> Result<LpSolution, SolveError> {
        // Phase 1: minimize the sum of artificials.
        let needs_phase1 = (0..self.m).any(|i| self.x[self.first_artificial + i] > EPS);
        if needs_phase1 {
            for j in self.first_artificial..self.n {
                self.cost[j] = 1.0;
            }
            self.recompute_obj_row();
            self.run_phase()?;
            let infeas: f64 = (self.first_artificial..self.n).map(|j| self.x[j]).sum();
            if infeas > 1e-6 {
                return Err(SolveError::Infeasible);
            }
        }
        // Lock artificials at zero for phase 2 (basic-at-zero artificials
        // stay harmless because their bounds collapse).
        for j in self.first_artificial..self.n {
            self.upper[j] = 0.0;
            self.x[j] = 0.0;
            self.cost[j] = 0.0;
        }

        // Phase 2: the real objective.
        for j in 0..self.n {
            self.cost[j] = if j < self.n_structural {
                problem.objective[j]
            } else {
                0.0
            };
        }
        self.degenerate_run = 0;
        self.recompute_obj_row();
        self.run_phase()?;

        let values = self.x[..self.n_structural].to_vec();
        Ok(LpSolution {
            objective: self.objective(),
            values,
            iterations: self.iterations,
        })
    }
}

/// Solve the LP relaxation of `problem` (integrality ignored).
pub fn solve_lp(problem: &Problem) -> Result<LpSolution, SolveError> {
    solve_lp_with_bounds(
        problem,
        &problem.lower,
        &problem.upper,
        default_iteration_limit(problem),
    )
}

/// Solve the LP relaxation with per-call bound overrides (used by
/// branch-and-bound to express branching decisions).
pub fn solve_lp_with_bounds(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    iteration_limit: u64,
) -> Result<LpSolution, SolveError> {
    for j in 0..problem.num_vars() {
        if lower[j] > upper[j] {
            return Err(SolveError::Infeasible);
        }
    }
    Simplex::new(problem, lower, upper, iteration_limit).solve(problem)
}

/// Default iteration budget, generous relative to problem size.
pub fn default_iteration_limit(problem: &Problem) -> u64 {
    (200 + 50 * (problem.num_vars() + problem.num_constraints())) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivially_bounded_minimum() {
        // min x + y, x,y in [1, 5]: optimum at lower bounds.
        let mut p = Problem::new();
        let _x = p.add_var(1.0, 5.0, 1.0, false);
        let _y = p.add_var(1.0, 5.0, 1.0, false);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 (Dantzig's example).
        // As minimization: min -3x -5y. Optimum (2, 6), objective -36.
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, -3.0, false);
        let y = p.add_var(0.0, f64::INFINITY, -5.0, false);
        p.add_constraint(&[(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + 2y s.t. x + y = 10, x - y = 2  => x=6, y=4, obj=14.
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, 1.0, false);
        let y = p.add_var(0.0, f64::INFINITY, 2.0, false);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Eq, 10.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Sense::Eq, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 14.0);
        assert_close(s.values[0], 6.0);
        assert_close(s.values[1], 4.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 => (4,0)? obj 8 vs (1,3): 11.
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, 2.0, false);
        let y = p.add_var(0.0, f64::INFINITY, 3.0, false);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 4.0);
        p.add_constraint(&[(x, 1.0)], Sense::Ge, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.values[0], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 1.0, 1.0, false);
        p.add_constraint(&[(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(solve_lp(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, -1.0, false);
        p.add_constraint(&[(x, -1.0)], Sense::Le, 0.0); // -x <= 0, always true
        assert_eq!(solve_lp(&p), Err(SolveError::Unbounded));
    }

    #[test]
    fn upper_bounds_respected_via_flip() {
        // min -x - 2y with x,y in [0,3], x + y <= 4 => y=3, x=1, obj=-7.
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.0, -1.0, false);
        let y = p.add_var(0.0, 3.0, -2.0, false);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, -7.0);
        assert_close(s.values[1], 3.0);
        assert_close(s.values[0], 1.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x, x in [-5, 5], x >= -3  => x = -3.
        let mut p = Problem::new();
        let x = p.add_var(-5.0, 5.0, 1.0, false);
        p.add_constraint(&[(x, 1.0)], Sense::Ge, -3.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, -3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's cycling example (classic), guarded by Bland fallback.
        let mut p = Problem::new();
        let x1 = p.add_var(0.0, f64::INFINITY, -0.75, false);
        let x2 = p.add_var(0.0, f64::INFINITY, 150.0, false);
        let x3 = p.add_var(0.0, f64::INFINITY, -0.02, false);
        let x4 = p.add_var(0.0, f64::INFINITY, 6.0, false);
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(&[(x3, 1.0)], Sense::Le, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn bound_overrides_make_problem_infeasible() {
        let mut p = Problem::new();
        let _x = p.add_var(0.0, 1.0, 1.0, false);
        let r = solve_lp_with_bounds(&p, &[2.0], &[1.0], 1000);
        assert_eq!(r, Err(SolveError::Infeasible));
    }

    #[test]
    fn larger_random_like_lp_is_stable() {
        // A chain: x0 >= x1 >= ... >= x19, sum x <= 10, min -sum(x).
        // Optimum: all equal 0.5, objective -10.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..20).map(|_| p.add_var(0.0, 1.0, -1.0, false)).collect();
        for w in vars.windows(2) {
            p.add_constraint(&[(w[0], 1.0), (w[1], -1.0)], Sense::Ge, 0.0);
        }
        let sum: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&sum, Sense::Le, 10.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, -10.0);
    }
}
