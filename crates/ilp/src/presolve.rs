//! Presolve: bound propagation and fast infeasibility detection.
//!
//! Before the root LP is ever built, propagate variable bounds through the
//! constraint rows: a row whose minimum activity already exceeds its
//! right-hand side proves the whole problem infeasible with zero simplex
//! iterations, and implied bounds (tightened, then rounded to integrality)
//! shrink the search box and fix implied-integral variables outright.
//!
//! This is what lets Wishbone's rate sweep fail *fast* at overload rates:
//! with every source pinned to the node (`f = 1` bounds), the CPU row's
//! minimum activity is the pinned-vertex CPU sum — once that crosses the
//! budget, infeasibility is a single arithmetic pass, not a
//! branch-and-bound tree (the paper's 2100-solve Fig 6 sweep spends most
//! of its worst-case time exactly here).

use crate::num::is_exact_zero;
use crate::problem::{Problem, Sense};

/// Maximum fixpoint passes; propagation almost always stabilizes in 2–3.
const MAX_PASSES: usize = 16;
/// A bound must improve by more than this (scaled) to count as progress.
const IMPROVE_TOL: f64 = 1e-9;

/// What presolve concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresolveOutcome {
    /// Bounds were tightened in place; the search may proceed.
    Feasible {
        /// Individual bound tightenings applied across all passes.
        tightened: usize,
        /// Variables whose bounds collapsed to a single value.
        fixed: usize,
    },
    /// A row's activity range (or a crossed bound pair) proves the problem
    /// has no solution.
    Infeasible,
}

/// Feasibility tolerance for a row with right-hand side `rhs`, matching the
/// absolute 1e-6 tolerance the rest of the solver uses but scaling with the
/// row's magnitude so bandwidth-sized coefficients don't false-positive.
fn row_tol(rhs: f64) -> f64 {
    1e-6 * (1.0 + rhs.abs())
}

/// One `≤` row view: `Σ aᵢxᵢ ≤ b` (a `Ge` constraint contributes its
/// negation, an `Eq` contributes both directions).
fn le_rows(problem: &Problem) -> impl Iterator<Item = (&[(crate::problem::VarId, f64)], f64, f64)> {
    problem.constraints.iter().flat_map(|c| {
        let forward = (c.terms.as_slice(), 1.0, c.rhs);
        let backward = (c.terms.as_slice(), -1.0, -c.rhs);
        let (a, b) = match c.sense {
            Sense::Le => (Some(forward), None),
            Sense::Ge => (Some(backward), None),
            Sense::Eq => (Some(forward), Some(backward)),
        };
        [a, b].into_iter().flatten()
    })
}

/// Minimum activity of a `≤` row, split into its finite part and the count
/// of `-∞` contributions (variables with an infinite upper bound and a
/// negative coefficient), plus the column of the sole infinite contributor
/// when there is exactly one.
fn min_activity(
    terms: &[(crate::problem::VarId, f64)],
    sign: f64,
    lower: &[f64],
    upper: &[f64],
) -> (f64, usize, usize) {
    let mut finite = 0.0;
    let mut inf_count = 0;
    let mut inf_col = usize::MAX;
    for &(v, raw) in terms {
        let a = sign * raw;
        if a > 0.0 {
            finite += a * lower[v.0]; // lower bounds are always finite
        } else if a < 0.0 {
            if upper[v.0].is_finite() {
                finite += a * upper[v.0];
            } else {
                inf_count += 1;
                inf_col = v.0;
            }
        }
    }
    (finite, inf_count, inf_col)
}

/// Tighten `lower`/`upper` in place by propagating them through every row,
/// rounding integer bounds, and iterating to a fixpoint. Returns
/// [`PresolveOutcome::Infeasible`] as soon as any row or bound pair proves
/// the problem empty; propagation only removes points that violate some
/// constraint, so the feasible set (and the optimum) is preserved exactly.
pub fn presolve(problem: &Problem, lower: &mut [f64], upper: &mut [f64]) -> PresolveOutcome {
    let mut tightened = 0usize;

    // Integral rounding of the caller's bounds before the first pass.
    for j in 0..problem.num_vars() {
        if problem.integer[j] {
            lower[j] = (lower[j] - 1e-9).ceil();
            upper[j] = (upper[j] + 1e-9).floor();
        }
        if lower[j] > upper[j] {
            return PresolveOutcome::Infeasible;
        }
    }

    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for (terms, sign, rhs) in le_rows(problem) {
            let (finite, inf_count, inf_col) = min_activity(terms, sign, lower, upper);
            if inf_count == 0 && finite > rhs + row_tol(rhs) {
                return PresolveOutcome::Infeasible;
            }
            // Implied bound for each variable from the rest of the row.
            for &(v, raw) in terms {
                let a = sign * raw;
                if is_exact_zero(a) {
                    continue;
                }
                let j = v.0;
                // Minimum activity of the row *excluding* column j.
                let residual = if inf_count == 0 {
                    let own = if a > 0.0 { a * lower[j] } else { a * upper[j] };
                    finite - own
                } else if inf_count == 1 && inf_col == j {
                    finite
                } else {
                    continue; // residual is -∞: no implied bound
                };
                let limit = (rhs - residual) / a;
                if a > 0.0 {
                    // a·x_j ≤ rhs - residual  ⇒  x_j ≤ limit.
                    let new_up = if problem.integer[j] {
                        (limit + 1e-9).floor()
                    } else {
                        limit
                    };
                    if new_up < upper[j] - IMPROVE_TOL * (1.0 + upper[j].abs().min(1e12)) {
                        upper[j] = new_up;
                        tightened += 1;
                        changed = true;
                    }
                } else {
                    // a < 0 flips the inequality  ⇒  x_j ≥ limit.
                    let new_lo = if problem.integer[j] {
                        (limit - 1e-9).ceil()
                    } else {
                        limit
                    };
                    if new_lo > lower[j] + IMPROVE_TOL * (1.0 + lower[j].abs()) {
                        lower[j] = new_lo;
                        tightened += 1;
                        changed = true;
                    }
                }
                if lower[j] > upper[j] + 1e-9 {
                    return PresolveOutcome::Infeasible;
                }
                // Keep the box consistent for subsequent rows this pass.
                if lower[j] > upper[j] {
                    upper[j] = lower[j];
                }
            }
        }
        if !changed {
            break;
        }
    }

    let fixed = (0..problem.num_vars())
        .filter(|&j| upper[j] - lower[j] <= 1e-12)
        .count();
    PresolveOutcome::Feasible { tightened, fixed }
}

/// Single-pass fast fail: does any row's minimum activity already exceed
/// its right-hand side under these bounds (or any bound pair cross)? Used
/// per branch-and-bound node — `O(nnz)`, no allocation — so children made
/// infeasible by a branching bound never reach the simplex.
pub fn quick_infeasible(problem: &Problem, lower: &[f64], upper: &[f64]) -> bool {
    for j in 0..problem.num_vars() {
        if lower[j] > upper[j] {
            return true;
        }
    }
    for (terms, sign, rhs) in le_rows(problem) {
        let (finite, inf_count, _) = min_activity(terms, sign, lower, upper);
        if inf_count == 0 && finite > rhs + row_tol(rhs) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    #[test]
    fn over_budget_row_is_infeasible_without_simplex() {
        // Three pinned vertices (f = 1) whose CPU sum exceeds the budget.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..3).map(|_| p.add_var(1.0, 1.0, 0.0, true)).collect();
        let row: Vec<_> = vars.iter().map(|&v| (v, 0.4)).collect();
        p.add_constraint(&row, Sense::Le, 1.0);
        let (mut lo, mut up) = (p.lower.clone(), p.upper.clone());
        assert_eq!(presolve(&p, &mut lo, &mut up), PresolveOutcome::Infeasible);
        assert!(quick_infeasible(&p, &p.lower, &p.upper));
    }

    #[test]
    fn knapsack_bounds_tighten_and_fix() {
        // 3x + 3y <= 4 over binaries: both uppers round down to 1 (no
        // change), but x + y <= 4/3 ⇒ implied upper 1 each; with a Ge row
        // forcing x = 1, y's implied upper becomes 0 (fixed).
        let mut p = Problem::new();
        let x = p.add_binary(0.0);
        let y = p.add_binary(0.0);
        p.add_constraint(&[(x, 3.0), (y, 3.0)], Sense::Le, 4.0);
        p.add_constraint(&[(x, 1.0)], Sense::Ge, 1.0);
        let (mut lo, mut up) = (p.lower.clone(), p.upper.clone());
        match presolve(&p, &mut lo, &mut up) {
            PresolveOutcome::Feasible { fixed, .. } => {
                assert_eq!(lo[0], 1.0, "x forced to 1");
                assert_eq!(up[1], 0.0, "y implied-fixed to 0");
                assert!(fixed >= 2);
            }
            PresolveOutcome::Infeasible => panic!("feasible instance"),
        }
    }

    #[test]
    fn ge_row_with_insufficient_max_activity_is_infeasible() {
        let mut p = Problem::new();
        let x = p.add_binary(0.0);
        let y = p.add_binary(0.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let (mut lo, mut up) = (p.lower.clone(), p.upper.clone());
        assert_eq!(presolve(&p, &mut lo, &mut up), PresolveOutcome::Infeasible);
    }

    #[test]
    fn infinite_bounds_do_not_false_positive() {
        // -x <= 0 with x unbounded above: min activity is -inf, never
        // "greater than rhs".
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, 1.0, false);
        let y = p.add_var(0.0, f64::INFINITY, 1.0, false);
        p.add_constraint(&[(x, -1.0), (y, -1.0)], Sense::Le, 0.0);
        let (mut lo, mut up) = (p.lower.clone(), p.upper.clone());
        assert!(matches!(
            presolve(&p, &mut lo, &mut up),
            PresolveOutcome::Feasible { .. }
        ));
        assert!(!quick_infeasible(&p, &p.lower, &p.upper));
    }

    #[test]
    fn single_infinite_contributor_still_gets_a_bound() {
        // x - y <= 2 with y unbounded above: the row cannot bound x (the
        // residual is -inf)... except for y itself: -y <= 2 - x_min ⇒
        // y >= x_min - 2 = -2, weaker than y >= 0. Now with x >= 5 pinned:
        // y >= 3.
        let mut p = Problem::new();
        let x = p.add_var(5.0, 5.0, 0.0, false);
        let y = p.add_var(0.0, f64::INFINITY, 0.0, false);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Sense::Le, 2.0);
        let (mut lo, mut up) = (p.lower.clone(), p.upper.clone());
        assert!(matches!(
            presolve(&p, &mut lo, &mut up),
            PresolveOutcome::Feasible { .. }
        ));
        assert!((lo[1] - 3.0).abs() < 1e-9, "y >= 3 implied, got {}", lo[1]);
    }

    #[test]
    fn equality_propagates_both_directions() {
        // x + y = 4, x,y in [0, 10] ⇒ both uppers tighten to 4.
        let mut p = Problem::new();
        let x = p.add_var(0.0, 10.0, 0.0, false);
        let y = p.add_var(0.0, 10.0, 0.0, false);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        let (mut lo, mut up) = (p.lower.clone(), p.upper.clone());
        assert!(matches!(
            presolve(&p, &mut lo, &mut up),
            PresolveOutcome::Feasible { .. }
        ));
        assert!(up[0] <= 4.0 + 1e-9 && up[1] <= 4.0 + 1e-9);
    }
}
