//! Named numeric predicates, so intent survives the repo's
//! float-equality lint.
//!
//! `xtask lint` rejects raw `f64` `==`/`!=` comparisons in the solver
//! and encoder sources: most of them are bugs waiting for roundoff.
//! The survivors all mean the same thing — "this value is *exactly*
//! zero because nothing ever wrote to it, or because it was produced
//! by an operation that is exact in IEEE 754 (`x − x`, multiplying by
//! zero, copying)" — and that intent deserves a name instead of an
//! allowlist annotation at every site.

/// Is `x` exactly `±0.0` at full precision?
///
/// This is a *sparsity* test, not a tolerance test: use it where a
/// value is either untouched/exactly cancelled by construction (a
/// never-written accumulator, a structurally absent coefficient, a
/// reduced cost of a basic variable) or meaningfully nonzero. For
/// "close enough to zero" comparisons use an explicit epsilon —
/// `EPS`/`PIVOT_TOL` in the simplex — never this.
///
/// `NaN` is not exact zero; `-0.0` is.
///
/// ```
/// use wishbone_ilp::is_exact_zero;
/// assert!(is_exact_zero(0.0));
/// assert!(is_exact_zero(-0.0));
/// assert!(is_exact_zero(1.5 - 1.5));
/// assert!(!is_exact_zero(1e-300));
/// assert!(!is_exact_zero(f64::NAN));
/// ```
#[inline(always)]
pub fn is_exact_zero(x: f64) -> bool {
    x == 0.0 // audit:allow(float-eq): the one definition site of the exact-zero predicate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_semantics() {
        assert!(is_exact_zero(0.0));
        assert!(is_exact_zero(-0.0));
        assert!(is_exact_zero(2.5 * 0.0));
        assert!(!is_exact_zero(f64::MIN_POSITIVE));
        assert!(!is_exact_zero(-1e-308));
        assert!(!is_exact_zero(f64::NAN));
        assert!(!is_exact_zero(f64::INFINITY));
    }
}
