//! Reusable dense-simplex workspace.
//!
//! A [`SimplexWorkspace`] owns every buffer the simplex algorithm needs —
//! tableau, transformed right-hand side, basis, variable statuses, bounds,
//! costs, reduced costs — sized once for a problem and reused across all LP
//! solves of a branch-and-bound search. After the first node, `load`
//! (the cold path) only rewrites buffer contents: zero per-node heap
//! allocations of tableau buffers.
//!
//! The workspace also retains the final basis of the last *successful*
//! solve. When the next solve is the same problem under different variable
//! bounds (exactly what branch-and-bound children are), the warm path in
//! `simplex.rs` re-enters from that basis and repairs primal feasibility
//! with a bounded dual-simplex pass instead of rebuilding from the
//! all-artificial basis — the warm-started-child strategy production MILP
//! solvers use.

use crate::num::is_exact_zero;
use crate::problem::{Problem, Sense};
use crate::revised::SparseState;

/// Which simplex implementation executes a solve.
///
/// Both backends share the [`SimplexWorkspace`] bookkeeping (column
/// layout, basis, statuses, warm-start retention) and produce the same
/// answers — the differential proptests in `tests/proptest_revised.rs`
/// hold them to that — but their per-iteration cost scales differently:
/// the dense tableau streams `O(m·n)` floats per pivot, the sparse
/// revised method `O(nnz)` per FTRAN/BTRAN against an LU-factored basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Pick per problem: sparse revised at or above
    /// [`SPARSE_AUTO_THRESHOLD`] constraints, dense tableau below it.
    #[default]
    Auto,
    /// Dense-tableau simplex (PR 2's path; the oracle the differential
    /// tests compare the sparse backend against).
    Dense,
    /// Sparse revised simplex over an LU-factored basis (`revised.rs`).
    Sparse,
}

/// Constraint count at which [`SolverBackend::Auto`] switches to the
/// sparse revised backend. Calibrated on the EEG partitioning family
/// (`BENCH_solver.json`): below ~50 constraints the dense tableau's
/// cache-resident pivots win, around this size the backends are within
/// noise of each other, and by ~1000 constraints (the fig6 near-cliff
/// 22-channel EEG) the sparse backend wins by ~20×.
pub const SPARSE_AUTO_THRESHOLD: usize = 64;

impl SolverBackend {
    /// Resolve `Auto` against a concrete problem (never returns `Auto`).
    pub fn resolve(self, problem: &Problem) -> SolverBackend {
        match self {
            SolverBackend::Auto => {
                if problem.num_constraints() >= SPARSE_AUTO_THRESHOLD {
                    SolverBackend::Sparse
                } else {
                    SolverBackend::Dense
                }
            }
            other => other,
        }
    }
}

/// Where a variable currently sits relative to the basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    /// In the basis (value determined by the tableau).
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
}

/// Reusable dense simplex state: one allocation per *problem shape*, shared
/// by every LP solve of a branch-and-bound search (and, allocation-wise, by
/// every probe of a rate search over the same encoded problem).
#[derive(Debug, Default)]
pub struct SimplexWorkspace {
    pub(crate) m: usize,
    /// Total columns: structural + slack + artificial.
    pub(crate) n: usize,
    pub(crate) n_structural: usize,
    pub(crate) first_artificial: usize,
    /// Row-major `m × n` tableau, kept equal to `B⁻¹·A`.
    pub(crate) t: Vec<f64>,
    /// Transformed right-hand side (`B⁻¹·b`-style invariant).
    pub(crate) rhs: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    pub(crate) status: Vec<VarStatus>,
    pub(crate) x: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) cost: Vec<f64>,
    pub(crate) obj_row: Vec<f64>,
    /// `m`-sized scratch used when re-deriving basic values from the
    /// tableau invariant.
    pub(crate) work: Vec<f64>,
    pub(crate) iterations: u64,
    pub(crate) iteration_limit: u64,
    pub(crate) degenerate_run: u64,
    /// Entering-column scan bound: `n` while artificials may still price
    /// (phase 1), `first_artificial` once they are locked at zero.
    pub(crate) scan_limit: usize,
    /// Rotating start column of the sparse backend's sectional pricing.
    pub(crate) price_cursor: usize,
    /// Sparse-backend state: CSC matrix, LU factors, eta file, raw
    /// right-hand sides, and the dense scratch the revised method needs.
    /// Empty (no allocation) while only the dense backend runs.
    pub(crate) sparse: SparseState,
    /// Which backend the caller asked for (`Auto` resolves per problem).
    backend: SolverBackend,
    /// Backend that produced the currently loaded/retained state; a warm
    /// start requires the resolved backend to match it.
    loaded_backend: SolverBackend,
    /// Test-only override: price with Bland's rule from the first
    /// iteration instead of after a degenerate run. The anti-cycling
    /// regression tests use it to pin the fallback path on both backends.
    pub(crate) force_bland: bool,
    /// True when the buffers hold a valid, phase-2-optimal (or at least
    /// dual-feasible) basis for the problem shape recorded above.
    warm_ready: bool,
    /// Raw constraint right-hand sides as of the last cold `load`. The
    /// transformed `rhs` bakes these in, so a caller mutating them in
    /// place (`Problem::set_rhs`) silently invalidates the retained basis;
    /// `can_warm` compares to catch that. (Objective mutation is safe:
    /// `warm_load` rereads costs and the final primal pass certifies
    /// optimality regardless of the entering reduced costs.)
    pub(crate) loaded_rhs: Vec<f64>,
    warm_starts: u64,
    cold_starts: u64,
}

/// Reset a buffer to `len` copies of `val` without shrinking capacity (and
/// so without reallocating once the high-water mark is reached).
pub(crate) fn refill<T: Clone>(buf: &mut Vec<T>, len: usize, val: T) {
    buf.clear();
    buf.resize(len, val);
}

impl SimplexWorkspace {
    /// An empty workspace; buffers grow on first `load`.
    pub fn new() -> Self {
        Self::default()
    }

    /// LP solves that re-entered from a retained basis (dual-simplex warm
    /// start) since the last [`reset_counters`].
    ///
    /// [`reset_counters`]: SimplexWorkspace::reset_counters
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// LP solves built from the all-artificial basis since the last
    /// [`reset_counters`].
    ///
    /// [`reset_counters`]: SimplexWorkspace::reset_counters
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// Zero the warm/cold counters (each ILP solve reports per-solve
    /// deltas).
    pub fn reset_counters(&mut self) {
        self.warm_starts = 0;
        self.cold_starts = 0;
    }

    /// Forget the retained basis: the next solve must be a cold start.
    /// Called whenever the problem's coefficients may have changed.
    pub fn invalidate(&mut self) {
        self.warm_ready = false;
    }

    /// Select the simplex backend for subsequent solves. `Auto` (the
    /// default) resolves per problem by [`SPARSE_AUTO_THRESHOLD`].
    /// Switching backends between solves is safe: a retained basis from
    /// the other backend is simply not warm-started from.
    pub fn set_backend(&mut self, backend: SolverBackend) {
        self.backend = backend;
    }

    /// The configured backend (possibly `Auto`).
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    pub(crate) fn note_warm(&mut self) {
        self.warm_starts += 1;
    }

    pub(crate) fn note_cold(&mut self) {
        self.cold_starts += 1;
    }

    pub(crate) fn mark_warm_ready(&mut self) {
        self.warm_ready = true;
    }

    /// Can the retained basis serve `problem` (same shape, same
    /// right-hand sides, same resolved backend, valid state)?
    pub(crate) fn can_warm(&self, problem: &Problem) -> bool {
        self.warm_ready
            && self.loaded_backend == self.backend.resolve(problem)
            && self.n_structural == problem.num_vars()
            && self.m == problem.num_constraints()
            && problem
                .constraints
                .iter()
                .zip(&self.loaded_rhs)
                .all(|(c, &r)| c.rhs == r)
    }

    /// Cold build: the tableau for `problem` with per-solve bound overrides
    /// (branch-and-bound tightens bounds without copying the problem).
    /// Reuses every buffer; allocates only if the problem outgrows them.
    pub(crate) fn load(
        &mut self,
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        iteration_limit: u64,
    ) {
        let n_structural = problem.num_vars();
        let m = problem.num_constraints();
        let n_slack: usize = problem
            .constraints
            .iter()
            .filter(|c| c.sense != Sense::Eq)
            .count();
        let n = n_structural + n_slack + m; // one artificial per row
        let first_artificial = n_structural + n_slack;

        self.m = m;
        self.n = n;
        self.n_structural = n_structural;
        self.first_artificial = first_artificial;

        refill(&mut self.t, m * n, 0.0);
        refill(&mut self.rhs, m, 0.0);
        refill(&mut self.lower, n, 0.0);
        refill(&mut self.upper, n, f64::INFINITY);
        self.lower[..n_structural].copy_from_slice(lower);
        self.upper[..n_structural].copy_from_slice(upper);

        // Nonbasic structural variables start at their (finite) lower bound.
        refill(&mut self.x, n, 0.0);
        self.x[..n_structural].copy_from_slice(&self.lower[..n_structural]);

        refill(&mut self.status, n, VarStatus::AtLower);
        self.basis.clear();

        let mut slack_col = n_structural;
        for (i, c) in problem.constraints.iter().enumerate() {
            let row = &mut self.t[i * n..(i + 1) * n];
            for &(v, a) in &c.terms {
                row[v.0] += a;
            }
            match c.sense {
                Sense::Le => {
                    row[slack_col] = 1.0;
                    slack_col += 1;
                }
                Sense::Ge => {
                    row[slack_col] = -1.0;
                    slack_col += 1;
                }
                Sense::Eq => {}
            }
            self.rhs[i] = c.rhs;
            // Residual with all nonbasic vars at their initial values
            // (slacks start at 0, structural at lower bound).
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * self.x[v.0]).sum();
            let residual = c.rhs - lhs;
            let art = first_artificial + i;
            if residual >= 0.0 {
                row[art] = 1.0;
            } else {
                // Scale the row so the artificial's column is +1 and its
                // value |residual| is nonnegative.
                for v in row.iter_mut() {
                    *v = -*v;
                }
                row[art] = 1.0;
                self.rhs[i] = -self.rhs[i];
            }
            self.x[art] = residual.abs();
            self.status[art] = VarStatus::Basic;
            self.basis.push(art);
        }
        debug_assert_eq!(slack_col, first_artificial);

        self.loaded_rhs.clear();
        self.loaded_rhs
            .extend(problem.constraints.iter().map(|c| c.rhs));

        refill(&mut self.cost, n, 0.0);
        refill(&mut self.obj_row, n, 0.0);
        refill(&mut self.work, m, 0.0);
        self.iterations = 0;
        self.iteration_limit = iteration_limit;
        self.degenerate_run = 0;
        self.scan_limit = n;
        self.loaded_backend = SolverBackend::Dense;
    }

    /// Record which backend produced the loaded state (the sparse loader
    /// lives in `revised.rs` and calls this).
    pub(crate) fn set_loaded_backend(&mut self, backend: SolverBackend) {
        self.loaded_backend = backend;
    }

    /// Warm re-entry: keep the retained tableau/basis, apply the new bound
    /// overrides, snap nonbasic variables onto their (possibly moved)
    /// bounds, re-derive basic values from the tableau invariant, and
    /// refresh phase-2 costs and reduced costs.
    ///
    /// Returns `false` when the retained statuses cannot express the new
    /// bounds (a variable parked at an upper bound that is now infinite) —
    /// the caller must fall back to a cold start.
    pub(crate) fn warm_load(
        &mut self,
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        iteration_limit: u64,
    ) -> bool {
        self.lower[..self.n_structural].copy_from_slice(lower);
        self.upper[..self.n_structural].copy_from_slice(upper);
        for j in 0..self.n_structural {
            match self.status[j] {
                VarStatus::Basic => {}
                VarStatus::AtLower => self.x[j] = self.lower[j],
                VarStatus::AtUpper => {
                    if !self.upper[j].is_finite() {
                        return false;
                    }
                    self.x[j] = self.upper[j];
                }
            }
        }

        // Phase-2 costs (artificials stay locked at zero cost and bounds).
        for j in 0..self.n {
            self.cost[j] = if j < self.n_structural {
                problem.objective[j]
            } else {
                0.0
            };
        }

        self.iterations = 0;
        self.iteration_limit = iteration_limit;
        self.degenerate_run = 0;
        self.scan_limit = self.first_artificial;
        self.recompute_obj_row();
        self.recompute_basic_x();
        true
    }

    /// Re-derive every basic variable's value from the tableau invariant
    /// `x_B = B⁻¹b − Σ_{j nonbasic} (B⁻¹A)_j · x_j`.
    pub(crate) fn recompute_basic_x(&mut self) {
        self.work.clear();
        self.work.extend_from_slice(&self.rhs);
        for j in 0..self.n {
            if self.status[j] == VarStatus::Basic || is_exact_zero(self.x[j]) {
                continue;
            }
            let xj = self.x[j];
            for i in 0..self.m {
                self.work[i] -= self.t[i * self.n + j] * xj;
            }
        }
        for i in 0..self.m {
            self.x[self.basis[i]] = self.work[i];
        }
    }
}

#[cfg(test)]
mod send_audit {
    use super::*;

    /// Compile-time `Send` audit: the fleet service gives each worker
    /// thread a long-lived workspace arena, so the workspace (both
    /// backends' factorization state included) and everything solver
    /// calls exchange with it must cross thread boundaries.
    #[test]
    fn workspace_and_solver_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimplexWorkspace>();
        assert_send::<SolverBackend>();
        assert_send::<crate::Problem>();
        assert_send::<crate::IlpOptions>();
        assert_send::<crate::IlpStats>();
        assert_send::<crate::IlpSolution>();
    }
}
