//! Branch and bound over the LP relaxation.
//!
//! The paper's Figure 6 distinguishes the time at which lp_solve *discovers*
//! the optimal solution from the (much longer) time needed to *prove* its
//! optimality; [`IlpStats`] records both, plus every incumbent improvement,
//! so the benchmark harness can regenerate the CDF. The paper also suggests
//! terminating early using "an approximate lower bound ... based on
//! estimating how close we are to the optimal solution" — that is the
//! [`IlpOptions::rel_gap`] knob.

use std::time::{Duration, Instant};

use crate::problem::{Problem, SolveError};
use crate::simplex::{default_iteration_limit, solve_lp_with_bounds};

/// Tolerance for deciding a relaxation value is integral.
const INT_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Stop when `(incumbent - bound) / max(|incumbent|, 1)` falls below
    /// this. `0.0` proves optimality exactly (the default, like lp_solve).
    pub rel_gap: f64,
    /// Abort after exploring this many nodes (best incumbent is returned,
    /// flagged unproven).
    pub max_nodes: u64,
    /// Wall-clock budget; same unproven-return behaviour as `max_nodes`.
    pub time_limit: Option<Duration>,
    /// Per-LP simplex iteration cap; `None` derives one from problem size.
    pub simplex_iteration_limit: Option<u64>,
    /// Branching rule.
    pub branching: Branching,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            rel_gap: 0.0,
            max_nodes: 1_000_000,
            time_limit: None,
            simplex_iteration_limit: None,
            branching: Branching::MostFractional,
        }
    }
}

/// Which fractional variable to branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// The variable whose fractional part is closest to 0.5.
    MostFractional,
    /// The lowest-indexed fractional variable.
    FirstFractional,
}

/// Search statistics, including the discover-vs-prove timeline (Fig 6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IlpStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes: u64,
    /// Total simplex iterations across all nodes.
    pub simplex_iterations: u64,
    /// Elapsed time at which each improving incumbent was found, with its
    /// objective value.
    pub incumbents: Vec<(Duration, f64)>,
    /// Elapsed time when the final (best) incumbent was discovered.
    pub time_to_best: Duration,
    /// Total solve time (for a proven run, the time to *prove* optimality).
    pub total_time: Duration,
    /// True if the search space was exhausted (or closed within `rel_gap`).
    pub proved: bool,
    /// Relative gap at termination.
    pub final_gap: f64,
}

/// An integer-feasible solution plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Objective of the best integer-feasible assignment found.
    pub objective: f64,
    /// The assignment (integer variables are exact integers).
    pub values: Vec<f64>,
    /// Search statistics.
    pub stats: IlpStats,
}

struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// LP bound inherited from the parent (pruning key).
    parent_bound: f64,
}

/// Solve `problem` to integer optimality (or within `opts` limits).
pub fn solve_ilp(problem: &Problem, opts: &IlpOptions) -> Result<IlpSolution, SolveError> {
    let start = Instant::now();
    let iter_limit = opts
        .simplex_iteration_limit
        .unwrap_or_else(|| default_iteration_limit(problem));

    let mut stats = IlpStats::default();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;

    let mut stack: Vec<Node> = vec![Node {
        lower: problem.lower.clone(),
        upper: problem.upper.clone(),
        parent_bound: f64::NEG_INFINITY,
    }];
    // Lower bound on the optimum over the *open* part of the tree: the
    // minimum parent bound on the stack (valid because bounds only tighten
    // down a branch). Recomputed lazily.
    let mut hit_limit = false;

    while let Some(node) = stack.pop() {
        if stats.nodes >= opts.max_nodes {
            hit_limit = true;
            break;
        }
        if let Some(tl) = opts.time_limit {
            if start.elapsed() >= tl {
                hit_limit = true;
                break;
            }
        }
        // Prune against the incumbent before paying for an LP solve.
        if let Some((inc_obj, _)) = &incumbent {
            if node.parent_bound >= inc_obj - gap_slack(*inc_obj, opts.rel_gap) {
                continue;
            }
        }

        stats.nodes += 1;
        let lp = match solve_lp_with_bounds(problem, &node.lower, &node.upper, iter_limit) {
            Ok(lp) => lp,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        stats.simplex_iterations += lp.iterations;

        if let Some((inc_obj, _)) = &incumbent {
            if lp.objective >= inc_obj - gap_slack(*inc_obj, opts.rel_gap) {
                continue; // bound prune
            }
        }

        match pick_branch_var(problem, &lp.values, opts.branching) {
            None => {
                // Integer feasible: round off the residual fuzz.
                let mut vals = lp.values.clone();
                for (j, v) in vals.iter_mut().enumerate() {
                    if problem.integer[j] {
                        *v = v.round();
                    }
                }
                let obj = problem.objective_value(&vals);
                let improves = incumbent
                    .as_ref()
                    .is_none_or(|(best, _)| obj < best - 1e-12);
                if improves {
                    stats.incumbents.push((start.elapsed(), obj));
                    incumbent = Some((obj, vals));
                }
            }
            Some(j) => {
                // Primal rounding heuristic: flooring the integer variables
                // of the relaxation is often feasible for partitioning-style
                // structures (monotone single-crossing constraints and
                // nonnegative knapsack rows are preserved by thresholding).
                // A good early incumbent is what makes the discover-time
                // curve of Fig 6 sit far left of the prove-time curve.
                let mut rounded = lp.values.clone();
                for (k, v) in rounded.iter_mut().enumerate() {
                    if problem.integer[k] {
                        *v = v
                            .floor()
                            .clamp(problem.lower[k].ceil(), problem.upper[k].floor());
                    }
                }
                if problem.is_feasible(&rounded, 1e-6) {
                    let obj = problem.objective_value(&rounded);
                    let improves = incumbent
                        .as_ref()
                        .is_none_or(|(best, _)| obj < best - 1e-12);
                    if improves {
                        stats.incumbents.push((start.elapsed(), obj));
                        incumbent = Some((obj, rounded));
                    }
                }

                let x = lp.values[j];
                let floor = x.floor();
                let ceil = x.ceil();
                // Down child: x_j <= floor; Up child: x_j >= ceil.
                let mut down = Node {
                    lower: node.lower.clone(),
                    upper: node.upper.clone(),
                    parent_bound: lp.objective,
                };
                down.upper[j] = floor.min(down.upper[j]);
                let mut up = Node {
                    lower: node.lower,
                    upper: node.upper,
                    parent_bound: lp.objective,
                };
                up.lower[j] = ceil.max(up.lower[j]);
                // Dive towards the nearer integer first (depth-first with a
                // rounding heuristic finds incumbents early, which is what
                // makes the Fig 6 discover-time curve sit far left of the
                // prove-time curve).
                if x - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    stats.total_time = start.elapsed();
    match incumbent {
        Some((obj, values)) => {
            stats.proved = !hit_limit;
            stats.time_to_best = stats.incumbents.last().map(|&(t, _)| t).unwrap_or_default();
            // Remaining open nodes give the residual gap when limits hit.
            let open_bound = stack
                .iter()
                .map(|n| n.parent_bound)
                .fold(f64::INFINITY, f64::min);
            stats.final_gap = if hit_limit && open_bound < obj {
                (obj - open_bound) / obj.abs().max(1.0)
            } else {
                0.0
            };
            Ok(IlpSolution {
                objective: obj,
                values,
                stats,
            })
        }
        None => {
            if hit_limit {
                Err(SolveError::IterationLimit)
            } else {
                Err(SolveError::Infeasible)
            }
        }
    }
}

/// Absolute slack implied by the relative-gap termination rule.
fn gap_slack(incumbent: f64, rel_gap: f64) -> f64 {
    1e-9 + rel_gap * incumbent.abs().max(1.0)
}

fn pick_branch_var(problem: &Problem, x: &[f64], rule: Branching) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, &v) in x.iter().enumerate() {
        if !problem.integer[j] {
            continue;
        }
        let frac = (v - v.round()).abs();
        if frac <= INT_TOL {
            continue;
        }
        match rule {
            Branching::FirstFractional => return Some(j),
            Branching::MostFractional => {
                let dist = (v - v.floor() - 0.5).abs(); // 0 = most fractional
                if best.is_none_or(|(_, d)| dist < d) {
                    best = Some((j, dist));
                }
            }
        }
    }
    best.map(|(j, _)| j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10x0 + 13x1 + 4x2 + 8x3, weights 3,4,2,3 <= 7 (binary).
        // Best: x0 + x1 = 23 (weight exactly 7).
        let mut p = Problem::new();
        let vals = [10.0, 13.0, 4.0, 8.0];
        let wts = [3.0, 4.0, 2.0, 3.0];
        let vars: Vec<_> = vals.iter().map(|&v| p.add_binary(-v)).collect();
        let row: Vec<_> = vars.iter().zip(wts).map(|(&v, w)| (v, w)).collect();
        p.add_constraint(&row, Sense::Le, 7.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -23.0);
        assert_close(s.values[0], 1.0);
        assert_close(s.values[1], 1.0);
        assert!(s.stats.proved);
    }

    #[test]
    fn lp_integral_solution_needs_no_branching() {
        let mut p = Problem::new();
        let x = p.add_binary(-1.0);
        p.add_constraint(&[(x, 1.0)], Sense::Le, 1.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -1.0);
        assert_eq!(s.stats.nodes, 1);
    }

    #[test]
    fn infeasible_ilp() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn general_integers() {
        // min -x - y, x,y integer in [0, 3.7], x + y <= 5.2  => 5 total.
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.7, -1.0, true);
        let y = p.add_var(0.0, 3.7, -1.0, true);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 5.2);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -5.0);
        let sum = s.values[0] + s.values[1];
        assert_close(sum, 5.0);
    }

    #[test]
    fn mixed_integer() {
        // x binary, y continuous in [0, 10]: min -(5x + y), y <= 2 + 3x.
        // x=1 => y<=5 => obj -10.
        let mut p = Problem::new();
        let x = p.add_binary(-5.0);
        let y = p.add_var(0.0, 10.0, -1.0, false);
        p.add_constraint(&[(y, 1.0), (x, -3.0)], Sense::Le, 2.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -10.0);
        assert_close(s.values[0], 1.0);
        assert_close(s.values[1], 5.0);
    }

    #[test]
    fn node_limit_returns_unproven_incumbent() {
        // A 12-item knapsack forces some branching; with a 2-node budget we
        // should either get an unproven incumbent or an error, never a
        // "proved" flag.
        let mut p = Problem::new();
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary(-((i % 5 + 1) as f64) - 0.37))
            .collect();
        let row: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 3 + 1) as f64))
            .collect();
        p.add_constraint(&row, Sense::Le, 6.5);
        let opts = IlpOptions {
            max_nodes: 2,
            ..Default::default()
        };
        match solve_ilp(&p, &opts) {
            Ok(s) => assert!(!s.stats.proved),
            Err(SolveError::IterationLimit) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn incumbent_timeline_is_monotone() {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..10)
            .map(|i| p.add_binary(-(1.0 + (i as f64) * 0.3)))
            .collect();
        let row: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&row, Sense::Le, 4.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        for w in s.stats.incumbents.windows(2) {
            assert!(w[1].1 < w[0].1, "objectives must strictly improve");
            assert!(w[1].0 >= w[0].0, "times must be nondecreasing");
        }
        assert!(s.stats.time_to_best <= s.stats.total_time);
    }

    #[test]
    fn branching_rules_agree_on_optimum() {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..8)
            .map(|i| p.add_binary(-((i * 7 % 5) as f64 + 1.5)))
            .collect();
        let row: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 4 + 1) as f64))
            .collect();
        p.add_constraint(&row, Sense::Le, 9.0);
        let a = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let b = solve_ilp(
            &p,
            &IlpOptions {
                branching: Branching::FirstFractional,
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(a.objective, b.objective);
    }
}
