//! Branch and bound over the LP relaxation.
//!
//! The paper's Figure 6 distinguishes the time at which lp_solve *discovers*
//! the optimal solution from the (much longer) time needed to *prove* its
//! optimality; [`IlpStats`] records both, plus every incumbent improvement,
//! so the benchmark harness can regenerate the CDF. The paper also suggests
//! terminating early using "an approximate lower bound ... based on
//! estimating how close we are to the optimal solution" — that is the
//! [`IlpOptions::rel_gap`] knob.
//!
//! Three things make the search fast (cf. lp_solve's own architecture):
//!
//! * every node's LP reuses one [`SimplexWorkspace`] — after the root, the
//!   child re-enters **warm** from the last optimal basis and a short
//!   dual-simplex pass repairs (or refutes) feasibility, instead of paying
//!   a full tableau build + phase 1 from the artificial basis;
//! * [`presolve`](crate::presolve()) runs before the root LP (bailing
//!   `Infeasible` with zero simplex iterations when bound propagation
//!   proves it) and a single-pass activity check discards hopeless
//!   children before they reach the simplex;
//! * open nodes live in a **best-first** [`BinaryHeap`] keyed by the
//!   parent's LP bound, so the global lower bound tightens monotonically
//!   and a limit-hit return carries a meaningful [`IlpStats::final_gap`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::presolve::{presolve, quick_infeasible, PresolveOutcome};
use crate::problem::{Problem, Sense, SolveError};
use crate::simplex::{default_iteration_limit, solve_lp_in};
use crate::workspace::{SimplexWorkspace, SolverBackend};

/// Tolerance for deciding a relaxation value is integral.
const INT_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Stop when `(incumbent - bound) / max(|incumbent|, 1)` falls below
    /// this. `0.0` proves optimality exactly (the default, like lp_solve).
    pub rel_gap: f64,
    /// Abort after exploring this many nodes (best incumbent is returned,
    /// flagged unproven).
    pub max_nodes: u64,
    /// Wall-clock budget; same unproven-return behaviour as `max_nodes`.
    pub time_limit: Option<Duration>,
    /// Per-LP simplex iteration cap; `None` derives one from problem size.
    pub simplex_iteration_limit: Option<u64>,
    /// Branching rule.
    pub branching: Branching,
    /// Re-enter child LPs from the workspace's retained basis (dual-simplex
    /// warm start). Disable to force a cold start at every node — useful
    /// only for testing that both paths agree.
    pub warm_lp: bool,
    /// Run bound propagation before the root LP and the cheap activity
    /// fast-fail at every node.
    pub presolve: bool,
    /// A known integer-feasible assignment (e.g. the previous probe of a
    /// rate search) adopted as the initial incumbent/cutoff when it checks
    /// out feasible, so the tree is pruned from the first node.
    pub warm_solution: Option<Vec<f64>>,
    /// Which simplex backend solves the node LPs. `Auto` (the default)
    /// picks the sparse revised method at or above
    /// [`SPARSE_AUTO_THRESHOLD`](crate::workspace::SPARSE_AUTO_THRESHOLD)
    /// constraints and the dense tableau below it; forcing `Dense` or
    /// `Sparse` is how the differential tests and benches compare them.
    pub backend: SolverBackend,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            rel_gap: 0.0,
            max_nodes: 1_000_000,
            time_limit: None,
            simplex_iteration_limit: None,
            branching: Branching::MostFractional,
            warm_lp: true,
            presolve: true,
            warm_solution: None,
            backend: SolverBackend::Auto,
        }
    }
}

/// Which fractional variable to branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// The variable whose fractional part is closest to 0.5.
    MostFractional,
    /// The lowest-indexed fractional variable.
    FirstFractional,
}

/// Span-style wall-clock breakdown of one solve, seconds. The branch-
/// and-bound phases are timed by [`solve_ilp_in`] itself; `encode_s` is
/// stamped in by prepared pipelines that own the encoding (zero for a
/// direct [`solve_ilp`] call, where the caller encoded separately).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Building the encoded problem (graph build, merge, row emission).
    pub encode_s: f64,
    /// Root bound propagation (presolve).
    pub presolve_s: f64,
    /// Checking and adopting the warm incumbent seed.
    pub warm_start_s: f64,
    /// The node loop: every LP solve, branching, and heap bookkeeping.
    pub nodes_s: f64,
}

/// Search statistics, including the discover-vs-prove timeline (Fig 6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IlpStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes: u64,
    /// Total simplex iterations across all nodes.
    pub simplex_iterations: u64,
    /// Simplex iterations of each node's LP, in solve order (warm-started
    /// children should sit far below the cold root).
    pub node_iterations: Vec<u64>,
    /// Node LPs re-entered from the retained basis of the shared workspace.
    pub warm_starts: u64,
    /// Node LPs built from scratch (the root, plus any warm fallback).
    pub cold_starts: u64,
    /// Elapsed time at which each improving incumbent was found, with its
    /// objective value.
    pub incumbents: Vec<(Duration, f64)>,
    /// Elapsed time when the search first held an incumbent within
    /// floating-point noise (1e-6 relative) of the final best — the
    /// "discover" curve of Fig 6. Later epsilon-scale refinements between
    /// alternative optima do not move this.
    pub time_to_best: Duration,
    /// Total solve time (for a proven run, the time to *prove* optimality).
    pub total_time: Duration,
    /// True if the search space was exhausted (or closed within `rel_gap`).
    pub proved: bool,
    /// Relative gap at termination.
    pub final_gap: f64,
    /// True if the node or wall-clock budget ran out before the tree was
    /// exhausted. Combined with an `Err(IterationLimit)` result this is
    /// the *timed-out-without-incumbent* signal: the probe proved
    /// nothing, and [`IlpStats::best_bound`] is all it learned.
    pub timed_out: bool,
    /// Lower bound on the optimal objective over the open tree at
    /// termination (the best-first heap top, merged with an interrupted
    /// plunge child). `None` when the search ended before any node LP
    /// bounded the tree, or when infeasibility was proved outright.
    /// For a proved run this equals the incumbent objective.
    pub best_bound: Option<f64>,
    /// True if [`IlpOptions::warm_solution`] checked out feasible and was
    /// adopted as the initial incumbent (seeded cutoff from node one).
    pub seeded: bool,
    /// The simplex backend that solved the node LPs (resolved — never
    /// `Auto`).
    pub backend: SolverBackend,
    /// Wall-clock breakdown of the solve by phase.
    pub phase_times: PhaseTimes,
}

/// An integer-feasible solution plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Objective of the best integer-feasible assignment found.
    pub objective: f64,
    /// The assignment (integer variables are exact integers).
    pub values: Vec<f64>,
    /// Search statistics.
    pub stats: IlpStats,
}

struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// LP bound inherited from the parent (pruning and ordering key).
    parent_bound: f64,
    depth: u32,
}

// Best-first ordering: `BinaryHeap` pops its *greatest* element, so
// "greater" means "explore sooner" — the smaller parent bound, breaking
// ties towards the deeper node (a dive-flavoured tie-break that reaches
// integer-feasible leaves, and thus the first incumbent, sooner).
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .parent_bound
            .total_cmp(&self.parent_bound)
            .then(self.depth.cmp(&other.depth))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Node {}

/// Solve `problem` to integer optimality (or within `opts` limits) using a
/// throwaway workspace. Repeated solves of same-shaped problems should use
/// [`solve_ilp_in`] with a caller-owned [`SimplexWorkspace`].
pub fn solve_ilp(problem: &Problem, opts: &IlpOptions) -> Result<IlpSolution, SolveError> {
    let mut ws = SimplexWorkspace::new();
    solve_ilp_in(problem, opts, &mut ws).0
}

/// Solve `problem` inside a reusable workspace, returning the statistics
/// alongside the result so failed runs (notably presolve-proven
/// infeasibility, where `stats.nodes == 0`) are observable too. For a
/// successful run the returned stats equal `solution.stats`.
pub fn solve_ilp_in(
    problem: &Problem,
    opts: &IlpOptions,
    ws: &mut SimplexWorkspace,
) -> (Result<IlpSolution, SolveError>, IlpStats) {
    let start = Instant::now();
    // The caller may have mutated the problem since the workspace last saw
    // it (rate rescaling does); the root must always enter cold.
    ws.invalidate();
    ws.reset_counters();
    ws.set_backend(opts.backend);

    let mut stats = IlpStats {
        backend: opts.backend.resolve(problem),
        ..IlpStats::default()
    };
    let mut root_lower = problem.lower.clone();
    let mut root_upper = problem.upper.clone();
    if opts.presolve {
        let presolve_start = Instant::now();
        let outcome = presolve(problem, &mut root_lower, &mut root_upper);
        stats.phase_times.presolve_s = presolve_start.elapsed().as_secs_f64();
        if let PresolveOutcome::Infeasible = outcome {
            stats.proved = true;
            stats.total_time = start.elapsed();
            return (Err(SolveError::Infeasible), stats);
        }
    }

    let iter_limit = opts
        .simplex_iteration_limit
        .unwrap_or_else(|| default_iteration_limit(problem));

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let warm_start_t = Instant::now();
    if let Some(seed) = &opts.warm_solution {
        if seed.len() == problem.num_vars() {
            let mut vals = seed.clone();
            for (j, v) in vals.iter_mut().enumerate() {
                if problem.integer[j] {
                    *v = v.round();
                }
            }
            if problem.is_feasible(&vals, 1e-6) {
                let obj = problem.objective_value(&vals);
                stats.incumbents.push((start.elapsed(), obj));
                incumbent = Some((obj, vals));
                stats.seeded = true;
            }
        }
    }
    stats.phase_times.warm_start_s = warm_start_t.elapsed().as_secs_f64();

    // The floor-and-lift rounding heuristic below assumes a chain-shaped
    // precedence structure (one indicator component, as in the binary and
    // single-chain encodings). A branching deployment encodes several
    // disjoint per-leaf components coupled only through shared budget
    // rows; there the floored candidate keeps violating the tight coupled
    // rows and is discarded at every node, so detect the shape once and
    // skip the heuristic for the whole solve.
    let try_rounding = precedence_components(problem) < 2;

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    // One child of the just-solved node is explored immediately
    // (depth-first "plunge"), the sibling parked in the best-first heap.
    // Plunging is what finds integer-feasible incumbents fast (the Fig 6
    // discover-time curve) and what keeps consecutive LPs one bound change
    // apart, so the warm-started dual repair needs only a pivot or two;
    // the heap drives the *proof*, popping the globally weakest bound so
    // the residual gap tightens monotonically.
    let mut plunge: Option<Node> = Some(Node {
        lower: root_lower,
        upper: root_upper,
        parent_bound: f64::NEG_INFINITY,
        depth: 0,
    });
    let mut hit_limit = false;
    let mut fatal: Option<SolveError> = None;

    let node_loop_t = Instant::now();
    loop {
        if stats.nodes >= opts.max_nodes {
            hit_limit = true;
            break;
        }
        if let Some(tl) = opts.time_limit {
            if start.elapsed() >= tl {
                hit_limit = true;
                break;
            }
        }
        let node = match plunge.take() {
            Some(n) => {
                // The plunge child is pruned like any node; on prune, fall
                // back to the heap on the next pass.
                if let Some((inc_obj, _)) = &incumbent {
                    if n.parent_bound >= inc_obj - gap_slack(*inc_obj, opts.rel_gap) {
                        continue;
                    }
                }
                n
            }
            None => {
                // Best-first makes the heap top the global lower bound
                // over the open tree: once it crosses the incumbent's
                // gap-adjusted cutoff, every open node is pruned at once
                // and optimality (within rel_gap) is proved.
                let Some(top_bound) = heap.peek().map(|n| n.parent_bound) else {
                    break;
                };
                if let Some((inc_obj, _)) = &incumbent {
                    if top_bound >= inc_obj - gap_slack(*inc_obj, opts.rel_gap) {
                        break;
                    }
                }
                heap.pop().expect("peek succeeded")
            }
        };

        // Activity fast-fail: hopeless children never reach the simplex.
        if opts.presolve && quick_infeasible(problem, &node.lower, &node.upper) {
            continue;
        }

        stats.nodes += 1;
        let incumbents_before = stats.incumbents.len();
        let lp = match solve_lp_in(
            problem,
            &node.lower,
            &node.upper,
            iter_limit,
            ws,
            opts.warm_lp,
        ) {
            Ok(lp) => lp,
            Err(SolveError::Infeasible) => continue,
            Err(e) => {
                fatal = Some(e);
                break;
            }
        };
        stats.simplex_iterations += lp.iterations;
        stats.node_iterations.push(lp.iterations);

        if let Some((inc_obj, _)) = &incumbent {
            if lp.objective >= inc_obj - gap_slack(*inc_obj, opts.rel_gap) {
                continue; // bound prune
            }
        }

        match pick_branch_var(problem, &lp.values, opts.branching) {
            None => {
                // Integer feasible: round off the residual fuzz.
                let mut vals = lp.values.clone();
                for (j, v) in vals.iter_mut().enumerate() {
                    if problem.integer[j] {
                        *v = v.round();
                    }
                }
                let obj = problem.objective_value(&vals);
                let improves = incumbent
                    .as_ref()
                    .is_none_or(|(best, _)| obj < best - 1e-12);
                if improves {
                    stats.incumbents.push((start.elapsed(), obj));
                    incumbent = Some((obj, vals));
                }
            }
            Some(j) => {
                // Primal rounding heuristic: flooring the integer variables
                // of the relaxation is often feasible for partitioning-style
                // structures (monotone single-crossing constraints and
                // nonnegative knapsack rows are preserved by thresholding).
                // A good early incumbent is what makes the discover-time
                // curve of Fig 6 sit far left of the prove-time curve.
                if try_rounding {
                    let mut rounded = lp.values.clone();
                    for (k, v) in rounded.iter_mut().enumerate() {
                        if problem.integer[k] {
                            *v = v
                                .floor()
                                .clamp(problem.lower[k].ceil(), problem.upper[k].floor());
                        }
                    }
                    if problem.is_feasible(&rounded, 1e-6) {
                        greedy_lift(problem, &mut rounded);
                        let obj = problem.objective_value(&rounded);
                        let improves = incumbent
                            .as_ref()
                            .is_none_or(|(best, _)| obj < best - 1e-12);
                        if improves {
                            stats.incumbents.push((start.elapsed(), obj));
                            incumbent = Some((obj, rounded));
                        }
                    }
                }

                let x = lp.values[j];
                let floor = x.floor();
                let ceil = x.ceil();
                // Down child: x_j <= floor; Up child: x_j >= ceil.
                let mut down = Node {
                    lower: node.lower.clone(),
                    upper: node.upper.clone(),
                    parent_bound: lp.objective,
                    depth: node.depth + 1,
                };
                down.upper[j] = floor.min(down.upper[j]);
                let mut up = Node {
                    lower: node.lower,
                    upper: node.upper,
                    parent_bound: lp.objective,
                    depth: node.depth + 1,
                };
                up.lower[j] = ceil.max(up.lower[j]);
                // Dive towards the nearer integer (the same rule the LIFO
                // search used); the sibling waits in the heap.
                if x - floor <= 0.5 {
                    heap.push(up);
                    plunge = Some(down);
                } else {
                    heap.push(down);
                    plunge = Some(up);
                }
            }
        }

        // A better incumbent retires every open node above the new cutoff;
        // dropping them eagerly keeps the best-first heap's memory
        // proportional to the nodes that can still matter.
        if stats.incumbents.len() > incumbents_before {
            if let Some((inc_obj, _)) = &incumbent {
                let cutoff = inc_obj - gap_slack(*inc_obj, opts.rel_gap);
                heap.retain(|n| n.parent_bound < cutoff);
            }
        }
    }

    stats.phase_times.nodes_s = node_loop_t.elapsed().as_secs_f64();
    stats.warm_starts = ws.warm_starts();
    stats.cold_starts = ws.cold_starts();
    stats.total_time = start.elapsed();
    stats.timed_out = hit_limit;

    if let Some(e) = fatal {
        return (Err(e), stats);
    }

    // The heap top is the residual lower bound over the open tree
    // (best-first keeps it the minimum); an interrupted plunge child is
    // open too.
    let open_bound = heap
        .peek()
        .map(|n| n.parent_bound)
        .unwrap_or(f64::INFINITY)
        .min(
            plunge
                .as_ref()
                .map(|n| n.parent_bound)
                .unwrap_or(f64::INFINITY),
        );

    let result = match incumbent {
        Some((obj, values)) => {
            stats.proved = !hit_limit;
            let discover_tol = 1e-6 * obj.abs().max(1.0);
            stats.time_to_best = stats
                .incumbents
                .iter()
                .find(|&&(_, o)| o <= obj + discover_tol)
                .map(|&(t, _)| t)
                .unwrap_or_default();
            stats.final_gap = if open_bound < obj {
                (obj - open_bound) / obj.abs().max(1.0)
            } else {
                0.0
            };
            let lower = open_bound.min(obj);
            stats.best_bound = lower.is_finite().then_some(lower);
            Ok(IlpSolution {
                objective: obj,
                values,
                stats: stats.clone(),
            })
        }
        None => {
            if hit_limit {
                // Timed out with no integer point: neither feasibility nor
                // infeasibility is proved. All the search learned is the
                // open-tree bound, carried in the stats so callers (e.g. a
                // rate search) can report "unproven" instead of reading
                // this as plain infeasibility.
                stats.best_bound = open_bound.is_finite().then_some(open_bound);
                Err(SolveError::IterationLimit)
            } else {
                stats.proved = true;
                Err(SolveError::Infeasible)
            }
        }
    };
    (result, stats)
}

/// Number of weakly-connected components among integer variables linked
/// by two-term precedence-shaped `≥` rows — the structural signature the
/// rounding heuristic keys on. A binary or single-chain encoding is one
/// component; a branching `Deployment` encodes one disjoint component per
/// leaf class.
fn precedence_components(problem: &Problem) -> usize {
    let n = problem.num_vars();
    // Union-find over variable indices; usize::MAX marks "not seen in any
    // precedence row".
    const UNSEEN: usize = usize::MAX;
    let mut parent: Vec<usize> = vec![UNSEEN; n];
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for c in &problem.constraints {
        if c.sense != Sense::Ge || c.terms.len() != 2 {
            continue;
        }
        let (a, ca) = c.terms[0];
        let (b, cb) = c.terms[1];
        if !(problem.integer[a.0] && problem.integer[b.0]) || ca * cb >= 0.0 {
            continue;
        }
        for v in [a.0, b.0] {
            if parent[v] == UNSEEN {
                parent[v] = v;
            }
        }
        let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut roots = 0usize;
    for v in 0..n {
        if parent[v] != UNSEEN && find(&mut parent, v) == v {
            roots += 1;
        }
    }
    roots
}

/// Absolute slack implied by the relative-gap termination rule.
fn gap_slack(incumbent: f64, rel_gap: f64) -> f64 {
    1e-9 + rel_gap * incumbent.abs().max(1.0)
}

/// Greedy repair of a rounded-down feasible point: raise integer variables
/// while every constraint keeps its slack. Flooring the LP relaxation is
/// feasible but weak on tight knapsack rows — it strands most of the
/// budget — and a mediocre first incumbent is what forces branch-and-bound
/// to wander for a replacement; the lift typically lands within the
/// integrality gap of the optimum at the root.
///
/// A lift may need company: in Wishbone's restricted encoding the
/// precedence rows `f_u − f_v ≥ 0` mean placing a high-reduction operator
/// on the node requires its (possibly cost-*increasing*) upstream chain
/// too. So for each beneficial candidate the lift plans the prerequisite
/// closure through violated precedence-shaped rows and applies the whole
/// set when its joint objective delta is negative and every row survives —
/// the "move the cutpoint deeper along the pipeline" move, done generically.
fn greedy_lift(problem: &Problem, vals: &mut [f64]) {
    const MAX_WAVES: usize = 4;
    const MAX_SET: usize = 48;

    let n = problem.num_vars();
    // Column view and current row activities.
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut act: Vec<f64> = Vec::with_capacity(problem.num_constraints());
    for (i, c) in problem.constraints.iter().enumerate() {
        let mut a = 0.0;
        for &(v, coef) in &c.terms {
            a += coef * vals[v.0];
            cols[v.0].push((i, coef));
        }
        act.push(a);
    }
    let liftable = |vals: &[f64], j: usize| -> bool {
        problem.integer[j] && vals[j] + 1.0 <= problem.upper[j] + 1e-9
    };
    let row_tol = |i: usize| 1e-6 * (1.0 + problem.constraints[i].rhs.abs());

    let mut cand: Vec<usize> = (0..n)
        .filter(|&j| problem.integer[j] && problem.objective[j] < -1e-12)
        .collect();
    cand.sort_by(|&a, &b| problem.objective[a].total_cmp(&problem.objective[b]));

    // Scratch for the closure planner.
    let mut set: Vec<usize> = Vec::new();
    let mut in_set = vec![false; n];
    // BTreeMap: the growth order of the plan must be deterministic.
    let mut row_delta: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();

    for _ in 0..MAX_WAVES {
        let mut lifted = false;
        for &j in &cand {
            if !liftable(vals, j) {
                continue;
            }
            // Grow the prerequisite closure of {j} until no touched row is
            // violated (or the plan is abandoned).
            set.clear();
            set.push(j);
            in_set[j] = true;
            let feasible = loop {
                row_delta.clear();
                for &k in &set {
                    for &(i, coef) in &cols[k] {
                        *row_delta.entry(i).or_insert(0.0) += coef;
                    }
                }
                let mut grew = false;
                let mut abandon = false;
                for (&i, &delta) in &row_delta {
                    let c = &problem.constraints[i];
                    let next = act[i] + delta;
                    let violated = match c.sense {
                        Sense::Le => next > c.rhs + row_tol(i),
                        Sense::Ge => next < c.rhs - row_tol(i),
                        Sense::Eq => (next - c.rhs).abs() > row_tol(i),
                    };
                    if !violated {
                        continue;
                    }
                    // Repairable only through a precedence-shaped `≥` row:
                    // lift the positive-coefficient member not yet in the
                    // plan.
                    let repair = if c.sense == Sense::Ge {
                        c.terms
                            .iter()
                            .find(|&&(v, coef)| coef > 0.0 && !in_set[v.0] && liftable(vals, v.0))
                            .map(|&(v, _)| v.0)
                    } else {
                        None
                    };
                    match repair {
                        Some(u) if set.len() < MAX_SET => {
                            set.push(u);
                            in_set[u] = true;
                            grew = true;
                        }
                        _ => {
                            abandon = true;
                            break;
                        }
                    }
                }
                if abandon {
                    break false;
                }
                if !grew {
                    break true;
                }
            };
            let delta_obj: f64 = set.iter().map(|&k| problem.objective[k]).sum();
            if feasible && delta_obj < -1e-12 {
                for &k in &set {
                    vals[k] += 1.0;
                }
                row_delta.clear();
                for &k in &set {
                    for &(i, coef) in &cols[k] {
                        *row_delta.entry(i).or_insert(0.0) += coef;
                    }
                }
                for (&i, &delta) in &row_delta {
                    act[i] += delta;
                }
                lifted = true;
            }
            for &k in &set {
                in_set[k] = false;
            }
        }
        if !lifted {
            break;
        }
    }
}

fn pick_branch_var(problem: &Problem, x: &[f64], rule: Branching) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, &v) in x.iter().enumerate() {
        if !problem.integer[j] {
            continue;
        }
        let frac = (v - v.round()).abs();
        if frac <= INT_TOL {
            continue;
        }
        match rule {
            Branching::FirstFractional => return Some(j),
            Branching::MostFractional => {
                let dist = (v - v.floor() - 0.5).abs(); // 0 = most fractional
                if best.is_none_or(|(_, d)| dist < d) {
                    best = Some((j, dist));
                }
            }
        }
    }
    best.map(|(j, _)| j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10x0 + 13x1 + 4x2 + 8x3, weights 3,4,2,3 <= 7 (binary).
        // Best: x0 + x1 = 23 (weight exactly 7).
        let mut p = Problem::new();
        let vals = [10.0, 13.0, 4.0, 8.0];
        let wts = [3.0, 4.0, 2.0, 3.0];
        let vars: Vec<_> = vals.iter().map(|&v| p.add_binary(-v)).collect();
        let row: Vec<_> = vars.iter().zip(wts).map(|(&v, w)| (v, w)).collect();
        p.add_constraint(&row, Sense::Le, 7.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -23.0);
        assert_close(s.values[0], 1.0);
        assert_close(s.values[1], 1.0);
        assert!(s.stats.proved);
    }

    #[test]
    fn lp_integral_solution_needs_no_branching() {
        let mut p = Problem::new();
        let x = p.add_binary(-1.0);
        p.add_constraint(&[(x, 1.0)], Sense::Le, 1.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -1.0);
        assert_eq!(s.stats.nodes, 1);
    }

    #[test]
    fn infeasible_ilp() {
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()),
            Err(SolveError::Infeasible)
        );
        // Presolve proves this one before any LP is built.
        let mut ws = SimplexWorkspace::new();
        let (r, stats) = solve_ilp_in(&p, &IlpOptions::default(), &mut ws);
        assert_eq!(r, Err(SolveError::Infeasible));
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.simplex_iterations, 0);
        assert!(stats.proved);
    }

    #[test]
    fn general_integers() {
        // min -x - y, x,y integer in [0, 3.7], x + y <= 5.2  => 5 total.
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.7, -1.0, true);
        let y = p.add_var(0.0, 3.7, -1.0, true);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 5.2);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -5.0);
        let sum = s.values[0] + s.values[1];
        assert_close(sum, 5.0);
    }

    #[test]
    fn mixed_integer() {
        // x binary, y continuous in [0, 10]: min -(5x + y), y <= 2 + 3x.
        // x=1 => y<=5 => obj -10.
        let mut p = Problem::new();
        let x = p.add_binary(-5.0);
        let y = p.add_var(0.0, 10.0, -1.0, false);
        p.add_constraint(&[(y, 1.0), (x, -3.0)], Sense::Le, 2.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        assert_close(s.objective, -10.0);
        assert_close(s.values[0], 1.0);
        assert_close(s.values[1], 5.0);
    }

    #[test]
    fn node_limit_returns_unproven_incumbent() {
        // A 12-item knapsack forces some branching; with a 2-node budget we
        // should either get an unproven incumbent or an error, never a
        // "proved" flag.
        let mut p = Problem::new();
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary(-((i % 5 + 1) as f64) - 0.37))
            .collect();
        let row: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 3 + 1) as f64))
            .collect();
        p.add_constraint(&row, Sense::Le, 6.5);
        let opts = IlpOptions {
            max_nodes: 2,
            ..Default::default()
        };
        match solve_ilp(&p, &opts) {
            Ok(s) => assert!(!s.stats.proved),
            Err(SolveError::IterationLimit) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn timeout_without_incumbent_carries_best_bound() {
        // min x + y s.t. x + y >= 1.5 over binaries: the root LP is
        // fractional and flooring it is infeasible, so one node cannot
        // produce an incumbent (presolve is off — bound propagation would
        // solve this toy outright). The limit-hit return must be
        // distinguishable from proven infeasibility: timed_out set,
        // proved unset, and the open-tree bound (1.5 after the root
        // branches) reported.
        let mut p = Problem::new();
        let x = p.add_binary(1.0);
        let y = p.add_binary(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 1.5);
        let opts = IlpOptions {
            max_nodes: 1,
            presolve: false,
            ..Default::default()
        };
        let mut ws = SimplexWorkspace::new();
        let (result, stats) = solve_ilp_in(&p, &opts, &mut ws);
        assert_eq!(result, Err(SolveError::IterationLimit));
        assert!(stats.timed_out, "limit hit must be flagged");
        assert!(!stats.proved);
        let bound = stats.best_bound.expect("root LP bounded the tree");
        assert!((bound - 1.5).abs() < 1e-6, "open bound {bound}");
        // The same instance without the limit solves fine — the timeout
        // signal never fires on a completed search.
        let full_opts = IlpOptions {
            presolve: false,
            ..Default::default()
        };
        let (full, full_stats) = solve_ilp_in(&p, &full_opts, &mut ws);
        let full = full.expect("feasible");
        assert!(!full_stats.timed_out);
        assert!(full_stats.proved);
        assert_close(full.objective, 2.0);
        assert_close(full_stats.best_bound.expect("proved bound"), 2.0);
    }

    #[test]
    fn adopted_warm_solution_is_flagged_seeded() {
        let mut p = Problem::new();
        let vals = [10.0, 13.0, 4.0, 8.0];
        let wts = [3.0, 4.0, 2.0, 3.0];
        let vars: Vec<_> = vals.iter().map(|&v| p.add_binary(-v)).collect();
        let row: Vec<_> = vars.iter().zip(wts).map(|(&v, w)| (v, w)).collect();
        p.add_constraint(&row, Sense::Le, 7.0);
        let opts = IlpOptions {
            warm_solution: Some(vec![0.0, 0.0, 1.0, 1.0]),
            ..Default::default()
        };
        let mut ws = SimplexWorkspace::new();
        let (result, stats) = solve_ilp_in(&p, &opts, &mut ws);
        let s = result.expect("feasible");
        assert!(stats.seeded, "feasible warm solution must seed the search");
        assert_close(s.objective, -23.0);
        // The seed is the first recorded incumbent.
        assert_close(stats.incumbents[0].1, -12.0);
        // An infeasible seed is ignored, not adopted.
        let bad = IlpOptions {
            warm_solution: Some(vec![1.0, 1.0, 1.0, 1.0]),
            ..Default::default()
        };
        let (_, stats) = solve_ilp_in(&p, &bad, &mut ws);
        assert!(!stats.seeded);
    }

    #[test]
    fn precedence_components_sees_branching_shapes() {
        // One chain: x0 -> x1 -> x2 (rows x_i - x_{i+1} >= 0).
        let mut p = Problem::new();
        let v: Vec<_> = (0..3).map(|_| p.add_binary(-1.0)).collect();
        p.add_constraint(&[(v[0], 1.0), (v[1], -1.0)], Sense::Ge, 0.0);
        p.add_constraint(&[(v[1], 1.0), (v[2], -1.0)], Sense::Ge, 0.0);
        assert_eq!(precedence_components(&p), 1);
        // A second, disjoint chain — the branching-deployment signature.
        let w: Vec<_> = (0..2).map(|_| p.add_binary(-1.0)).collect();
        p.add_constraint(&[(w[0], 1.0), (w[1], -1.0)], Sense::Ge, 0.0);
        assert_eq!(precedence_components(&p), 2);
        // Budget rows and non-precedence shapes never count.
        let mut q = Problem::new();
        let a = q.add_binary(-1.0);
        let b = q.add_binary(-1.0);
        q.add_constraint(&[(a, 1.0), (b, 1.0)], Sense::Le, 1.0);
        assert_eq!(precedence_components(&q), 0);
    }

    #[test]
    fn incumbent_timeline_is_monotone() {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..10)
            .map(|i| p.add_binary(-(1.0 + (i as f64) * 0.3)))
            .collect();
        let row: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&row, Sense::Le, 4.0);
        let s = solve_ilp(&p, &IlpOptions::default()).unwrap();
        for w in s.stats.incumbents.windows(2) {
            assert!(w[1].1 < w[0].1, "objectives must strictly improve");
            assert!(w[1].0 >= w[0].0, "times must be nondecreasing");
        }
        assert!(s.stats.time_to_best <= s.stats.total_time);
    }

    #[test]
    fn branching_rules_agree_on_optimum() {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..8)
            .map(|i| p.add_binary(-((i * 7 % 5) as f64 + 1.5)))
            .collect();
        let row: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 4 + 1) as f64))
            .collect();
        p.add_constraint(&row, Sense::Le, 9.0);
        let a = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let b = solve_ilp(
            &p,
            &IlpOptions {
                branching: Branching::FirstFractional,
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(a.objective, b.objective);
    }

    #[test]
    fn warm_starts_are_recorded_and_agree_with_cold() {
        // A knapsack that needs branching: the default (warm) search must
        // report warm starts and match the all-cold search exactly.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..10)
            .map(|i| p.add_binary(-((i * 3 % 7) as f64 + 1.21)))
            .collect();
        let row: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 4 + 1) as f64 + 0.5))
            .collect();
        p.add_constraint(&row, Sense::Le, 9.7);
        let warm = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let cold = solve_ilp(
            &p,
            &IlpOptions {
                warm_lp: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(warm.objective, cold.objective);
        assert!(warm.stats.nodes > 1, "instance must branch");
        assert!(warm.stats.warm_starts > 0, "children must re-enter warm");
        assert_eq!(cold.stats.warm_starts, 0);
        assert_eq!(cold.stats.cold_starts, cold.stats.nodes);
        assert_eq!(
            warm.stats.node_iterations.len() as u64,
            warm.stats.nodes,
            "one iteration count per solved node"
        );
    }

    #[test]
    fn warm_incumbent_seed_prunes_from_the_start() {
        // Seed the known optimum of a small knapsack: the search must
        // accept it and still prove optimality.
        let mut p = Problem::new();
        let vals = [10.0, 13.0, 4.0, 8.0];
        let wts = [3.0, 4.0, 2.0, 3.0];
        let vars: Vec<_> = vals.iter().map(|&v| p.add_binary(-v)).collect();
        let row: Vec<_> = vars.iter().zip(wts).map(|(&v, w)| (v, w)).collect();
        p.add_constraint(&row, Sense::Le, 7.0);
        let opts = IlpOptions {
            warm_solution: Some(vec![1.0, 1.0, 0.0, 0.0]),
            ..Default::default()
        };
        let s = solve_ilp(&p, &opts).unwrap();
        assert_close(s.objective, -23.0);
        assert!(s.stats.proved);
        assert_eq!(
            s.stats.incumbents.first().map(|&(_, o)| o),
            Some(-23.0),
            "seed adopted as the first incumbent"
        );
    }

    #[test]
    fn infeasible_warm_seed_is_ignored() {
        let mut p = Problem::new();
        let x = p.add_binary(-1.0);
        p.add_constraint(&[(x, 1.0)], Sense::Le, 0.0);
        let opts = IlpOptions {
            warm_solution: Some(vec![1.0]), // violates the constraint
            ..Default::default()
        };
        let s = solve_ilp(&p, &opts).unwrap();
        assert_close(s.objective, 0.0);
    }
}
