//! Sparse revised simplex over an LU-factored basis.
//!
//! This is the scaling backend the ROADMAP called for: at 972 constraints
//! a dense-tableau pivot streams ~13 MB, while Wishbone's constraint
//! matrices carry ≈2 nonzeros per row (`f_u ≥ f_v` precedence rows plus
//! one budget row) — exactly the shape where a revised method that only
//! ever touches `O(nnz)` per iteration wins by orders of magnitude.
//!
//! The algorithm is the *same* bounded-variable two-phase simplex as
//! `simplex.rs` — identical pricing rule (Dantzig with a Bland's-rule
//! fallback after a degenerate run), identical bound-flip ratio test,
//! identical dual-simplex warm repair — but the tableau is never formed:
//!
//! * reduced costs come from one BTRAN (`Bᵀy = c_B`) plus a sparse dot
//!   per column;
//! * the entering column comes from one FTRAN (`Bα = a_e`);
//! * the dual repair's pivot row comes from one BTRAN of a unit vector;
//! * each pivot appends an eta to the factorization, refactorizing (and
//!   recomputing `x_B`, which bounds drift) every
//!   [`REFACTOR_PERIOD`](crate::lu::REFACTOR_PERIOD) pivots.
//!
//! Mirroring the dense code line for line is deliberate: the two
//! backends must be interchangeable, and `tests/proptest_revised.rs`
//! holds them to byte-equivalent verdicts differentially.

use crate::lu::{Eta, LuFactors, ETA_NNZ_FACTOR, REFACTOR_PERIOD};
use crate::num::is_exact_zero;
use crate::problem::{LpSolution, Problem, SolveError};
use crate::simplex::{DualOutcome, WarmOutcome, DEGENERATE_LIMIT, DUAL_FEAS_TOL, EPS, PIVOT_TOL};
use crate::sparse::CscMatrix;
use crate::workspace::{refill, SimplexWorkspace, SolverBackend, VarStatus};

/// Everything the sparse backend owns beyond the shared workspace
/// bookkeeping: the constraint matrix, the basis factorization, and the
/// dense scratch vectors the solves consume. All buffers are reused
/// across loads; a workspace that only ever runs dense never allocates
/// any of this.
#[derive(Debug, Default)]
pub(crate) struct SparseState {
    /// Structural + slack + signed-artificial columns, CSC.
    pub(crate) matrix: CscMatrix,
    /// Raw right-hand sides (no row flipping — artificial signs carry
    /// the orientation instead).
    pub(crate) b: Vec<f64>,
    lu: LuFactors,
    etas: Vec<Eta>,
    /// Total nonzeros across the eta file (refactorization budget).
    eta_nnz: usize,
    /// Scratch indexed by original row (FTRAN input, zeroed after use).
    worig: Vec<f64>,
    /// Scratch indexed by basis position (BTRAN input / FTRAN output).
    wpos: Vec<f64>,
    /// The entering column in the basis frame. Sparse: only positions in
    /// `alpha_nnz` (stamped with `alpha_epoch`) are live; the rest is
    /// stale storage. This keeps the ratio test, the basic-value update,
    /// and the eta harvest `O(nnz(α))` instead of `O(m)` per iteration.
    alpha: Vec<f64>,
    /// Live positions of `alpha`, deduplicated via `alpha_stamp`.
    alpha_nnz: Vec<usize>,
    alpha_stamp: Vec<u64>,
    alpha_epoch: u64,
    /// Duals `y` (by original row) from the pricing BTRAN.
    y: Vec<f64>,
    /// Pivot row `ρ = B⁻ᵀ e_r` (by original row) for the dual repair.
    rho: Vec<f64>,
    /// `Aᵀ·y` by column — reduced cost of column `j` is `cost[j] − acc_y[j]`.
    acc_y: Vec<f64>,
    /// `Aᵀ·ρ` by column — the dual repair's pivot row.
    acc_rho: Vec<f64>,
    /// Is `acc_y` current for the present basis and costs? Bound flips
    /// leave the basis (and hence the duals) untouched, so flip-heavy
    /// stretches price without a single BTRAN.
    duals_fresh: bool,
}

impl SparseState {
    fn resize(&mut self, m: usize, n: usize) {
        refill(&mut self.worig, m, 0.0);
        refill(&mut self.wpos, m, 0.0);
        refill(&mut self.alpha, m, 0.0);
        refill(&mut self.alpha_stamp, m, 0);
        self.alpha_nnz.clear();
        self.alpha_epoch = 0;
        refill(&mut self.y, m, 0.0);
        refill(&mut self.rho, m, 0.0);
        refill(&mut self.acc_y, n, 0.0);
        refill(&mut self.acc_rho, n, 0.0);
        self.etas.clear();
        self.eta_nnz = 0;
        self.duals_fresh = false;
    }

    /// Refresh `acc_y[j] = aⱼ·y` over the first `limit` columns (one
    /// sequential gather pass over the CSC; `y` sits in L1).
    fn refresh_acc_y(&mut self, limit: usize) {
        for j in 0..limit {
            self.acc_y[j] = self.matrix.col_dot(j, &self.y);
        }
    }

    /// Refresh `acc_rho[j] = aⱼ·ρ` over the first `limit` columns.
    fn refresh_acc_rho(&mut self, limit: usize) {
        for j in 0..limit {
            self.acc_rho[j] = self.matrix.col_dot(j, &self.rho);
        }
    }

    /// Refactorize from the given basis, clearing the eta file. `false`
    /// means the basis is numerically singular.
    fn refactor(&mut self, basis: &[usize]) -> bool {
        self.etas.clear();
        self.eta_nnz = 0;
        self.lu.factorize(&self.matrix, basis)
    }

    /// `α ← B⁻¹ a_j` (sparse, live positions in `self.alpha_nnz`).
    ///
    /// `worig` is clean here by invariant: `ftran` consumes its input
    /// back to zero, and every other writer restores it.
    fn ftran_col(&mut self, j: usize) {
        debug_assert!(self.worig.iter().all(|&v| is_exact_zero(v)));
        self.matrix.axpy_col(j, 1.0, &mut self.worig);
        self.alpha_epoch += 1;
        self.alpha_nnz.clear();
        self.lu
            .ftran_sparse(&mut self.worig, &mut self.alpha, &mut self.alpha_nnz);
        let epoch = self.alpha_epoch;
        for idx in 0..self.alpha_nnz.len() {
            self.alpha_stamp[self.alpha_nnz[idx]] = epoch;
        }
        let SparseState {
            ref etas,
            ref mut alpha,
            ref mut alpha_stamp,
            ref mut alpha_nnz,
            ..
        } = *self;
        for eta in etas.iter() {
            eta.apply_ftran_sparse(alpha, alpha_stamp, epoch, alpha_nnz);
        }
    }

    /// The live value of `α` at position `i` (0 when unstamped).
    #[inline]
    fn alpha_at(&self, i: usize) -> f64 {
        if self.alpha_stamp[i] == self.alpha_epoch {
            self.alpha[i]
        } else {
            0.0
        }
    }

    /// Solve `B·x = worig` into `wpos` (caller prepared `worig`; it is
    /// consumed). Applies the eta file, so it is valid mid-solve.
    fn ftran_rhs(&mut self) {
        self.lu.ftran(&mut self.worig, &mut self.wpos);
        for eta in &self.etas {
            eta.apply_ftran(&mut self.wpos);
        }
    }

    /// Duals: `y ← B⁻ᵀ · wpos` (caller filled `wpos` with `c_B`; it is
    /// consumed as scratch).
    fn btran_duals(&mut self) {
        for eta in self.etas.iter().rev() {
            eta.apply_btran(&mut self.wpos);
        }
        self.lu.btran(&self.wpos, &mut self.y);
    }

    /// Pivot row: `ρ ← B⁻ᵀ e_r` by original row.
    fn btran_row(&mut self, r: usize) {
        self.wpos.iter_mut().for_each(|v| *v = 0.0);
        self.wpos[r] = 1.0;
        for eta in self.etas.iter().rev() {
            eta.apply_btran(&mut self.wpos);
        }
        self.lu.btran(&self.wpos, &mut self.rho);
    }

    /// Append the update for a pivot at basis position `r` whose entering
    /// column is currently in `self.alpha`.
    fn push_eta(&mut self, r: usize) {
        let eta = Eta::from_sparse(r, &self.alpha, &self.alpha_nnz);
        self.eta_nnz += eta.nnz();
        self.etas.push(eta);
    }

    /// Time to refactorize? Either the eta count or the eta-file nonzero
    /// budget (which self-tunes for dense entering columns) is exhausted.
    fn due_for_refactor(&self, m: usize) -> bool {
        self.etas.len() >= REFACTOR_PERIOD || self.eta_nnz > ETA_NNZ_FACTOR * m.max(8)
    }
}

impl SimplexWorkspace {
    /// Cold build for the sparse backend: same shared-array layout as the
    /// dense [`load`](SimplexWorkspace::load) (structural, slack,
    /// artificial columns; artificial basis), but no tableau — the
    /// constraint matrix goes to CSC and the all-artificial basis is
    /// LU-factorized (trivially: it is diagonal).
    pub(crate) fn load_sparse(
        &mut self,
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        iteration_limit: u64,
    ) {
        let n_structural = problem.num_vars();
        let m = problem.num_constraints();
        let n_slack = problem
            .constraints
            .iter()
            .filter(|c| c.sense != crate::problem::Sense::Eq)
            .count();
        let n = n_structural + n_slack + m;
        let first_artificial = n_structural + n_slack;

        self.m = m;
        self.n = n;
        self.n_structural = n_structural;
        self.first_artificial = first_artificial;

        refill(&mut self.lower, n, 0.0);
        refill(&mut self.upper, n, f64::INFINITY);
        self.lower[..n_structural].copy_from_slice(lower);
        self.upper[..n_structural].copy_from_slice(upper);

        refill(&mut self.x, n, 0.0);
        self.x[..n_structural].copy_from_slice(&self.lower[..n_structural]);
        refill(&mut self.status, n, VarStatus::AtLower);
        self.basis.clear();

        // Slack crash basis: an inequality row whose residual (with the
        // nonbasic variables at their starting bounds) has the sign its
        // slack can absorb starts with the *slack* basic — no artificial,
        // no phase-1 work for that row. On Wishbone's encodings
        // (`f_u − f_v ≥ 0` at f = lower, budget rows with positive
        // right-hand sides) every row qualifies and phase 1 vanishes;
        // only equality or wrong-signed rows fall back to an artificial
        // (whose sign makes its starting value `|residual|`).
        self.sparse.b.clear();
        let mut art_sign = std::mem::take(&mut self.sparse.worig);
        art_sign.clear();
        let mut slack_col = n_structural;
        for (i, c) in problem.constraints.iter().enumerate() {
            self.sparse.b.push(c.rhs);
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * self.x[v.0]).sum();
            let residual = c.rhs - lhs;
            art_sign.push(if residual >= 0.0 { 1.0 } else { -1.0 });
            let art = first_artificial + i;
            let slack_value = match c.sense {
                crate::problem::Sense::Le => residual,
                crate::problem::Sense::Ge => -residual,
                crate::problem::Sense::Eq => -1.0,
            };
            if slack_value >= 0.0 {
                self.x[slack_col] = slack_value;
                self.status[slack_col] = VarStatus::Basic;
                self.basis.push(slack_col);
            } else {
                self.x[art] = residual.abs();
                self.status[art] = VarStatus::Basic;
                self.basis.push(art);
            }
            if c.sense != crate::problem::Sense::Eq {
                slack_col += 1;
            }
        }
        debug_assert_eq!(slack_col, first_artificial);
        self.sparse.matrix.load(problem, &art_sign);
        self.sparse.worig = art_sign;

        self.loaded_rhs.clear();
        self.loaded_rhs
            .extend(problem.constraints.iter().map(|c| c.rhs));

        refill(&mut self.cost, n, 0.0);
        self.iterations = 0;
        self.iteration_limit = iteration_limit;
        self.degenerate_run = 0;
        self.scan_limit = n;
        self.price_cursor = 0;
        self.set_loaded_backend(SolverBackend::Sparse);

        self.sparse.resize(m, n);
        let ok = self.sparse.refactor(&self.basis);
        debug_assert!(ok, "the artificial basis is diagonal");
    }

    /// Two-phase cold solve on the sparse backend, mirroring
    /// [`solve_cold`](SimplexWorkspace::solve_cold).
    pub(crate) fn solve_cold_sparse(
        &mut self,
        problem: &Problem,
    ) -> Result<LpSolution, SolveError> {
        let needs_phase1 = (0..self.m).any(|i| self.x[self.first_artificial + i] > EPS);
        if needs_phase1 {
            for j in self.first_artificial..self.n {
                self.cost[j] = 1.0;
            }
            self.run_phase_sparse()?;
            let infeas: f64 = (self.first_artificial..self.n).map(|j| self.x[j]).sum();
            if infeas > 1e-6 {
                return Err(SolveError::Infeasible);
            }
        }
        for j in self.first_artificial..self.n {
            self.upper[j] = 0.0;
            self.x[j] = 0.0;
            self.cost[j] = 0.0;
        }

        self.scan_limit = self.first_artificial;
        for j in 0..self.n {
            self.cost[j] = if j < self.n_structural {
                problem.objective[j]
            } else {
                0.0
            };
        }
        self.degenerate_run = 0;
        self.sparse.duals_fresh = false; // costs changed between phases
        self.run_phase_sparse()?;

        let values = self.x[..self.n_structural].to_vec();
        Ok(LpSolution {
            objective: self.objective(),
            values,
            iterations: self.iterations,
        })
    }

    /// Warm solve on the sparse backend: refactorize the retained basis,
    /// snap nonbasic variables onto the new bounds, dual-repair, then a
    /// primal phase-2 pass — the sparse twin of
    /// [`solve_warm`](SimplexWorkspace::solve_warm).
    pub(crate) fn solve_warm_sparse(
        &mut self,
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        iteration_limit: u64,
    ) -> WarmOutcome {
        if !self.warm_load_sparse(problem, lower, upper, iteration_limit) {
            return WarmOutcome::Retry;
        }
        let dual_budget = (self.m as u64 * 2 + 64).min(iteration_limit);
        match self.dual_repair_sparse(dual_budget) {
            DualOutcome::Feasible => {}
            DualOutcome::Infeasible => return WarmOutcome::Infeasible,
            DualOutcome::GiveUp => return WarmOutcome::Retry,
        }
        self.degenerate_run = 0;
        match self.run_phase_sparse() {
            Ok(()) => {}
            Err(_) => return WarmOutcome::Retry,
        }
        let values = self.x[..self.n_structural].to_vec();
        WarmOutcome::Solved(LpSolution {
            objective: self.objective(),
            values,
            iterations: self.iterations,
        })
    }

    fn warm_load_sparse(
        &mut self,
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        iteration_limit: u64,
    ) -> bool {
        self.lower[..self.n_structural].copy_from_slice(lower);
        self.upper[..self.n_structural].copy_from_slice(upper);
        for j in 0..self.n_structural {
            match self.status[j] {
                VarStatus::Basic => {}
                VarStatus::AtLower => self.x[j] = self.lower[j],
                VarStatus::AtUpper => {
                    if !self.upper[j].is_finite() {
                        return false;
                    }
                    self.x[j] = self.upper[j];
                }
            }
        }
        for j in 0..self.n {
            self.cost[j] = if j < self.n_structural {
                problem.objective[j]
            } else {
                0.0
            };
        }
        self.iterations = 0;
        self.iteration_limit = iteration_limit;
        self.degenerate_run = 0;
        self.scan_limit = self.first_artificial;
        self.price_cursor = 0;
        self.sparse.duals_fresh = false;
        if !self.sparse.refactor(&self.basis) {
            return false;
        }
        self.recompute_basic_x_sparse();
        true
    }

    /// Re-derive every basic value from the factorized invariant
    /// `x_B = B⁻¹(b − N·x_N)` — the sparse analogue of
    /// [`recompute_basic_x`](SimplexWorkspace::recompute_basic_x), and
    /// the step that discards accumulated drift at each refactorization.
    fn recompute_basic_x_sparse(&mut self) {
        self.sparse.worig.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.m {
            self.sparse.worig[i] = self.sparse.b[i];
        }
        for j in 0..self.n {
            if self.status[j] == VarStatus::Basic || is_exact_zero(self.x[j]) {
                continue;
            }
            self.sparse
                .matrix
                .axpy_col(j, -self.x[j], &mut self.sparse.worig);
        }
        self.sparse.ftran_rhs();
        for k in 0..self.m {
            self.x[self.basis[k]] = self.sparse.wpos[k];
        }
    }

    /// `‖A·x − b‖∞` over the full column space — the factorization-drift
    /// observable the regression tests bound across ≥100 pivots.
    #[cfg(test)]
    pub(crate) fn sparse_residual_inf(&mut self) -> f64 {
        self.sparse.worig.iter_mut().for_each(|v| *v = 0.0);
        for j in 0..self.n {
            if self.x[j] != 0.0 {
                self.sparse
                    .matrix
                    .axpy_col(j, self.x[j], &mut self.sparse.worig);
            }
        }
        let r = self
            .sparse
            .worig
            .iter()
            .zip(&self.sparse.b)
            .map(|(ax, b)| (ax - b).abs())
            .fold(0.0f64, f64::max);
        self.sparse.worig.iter_mut().for_each(|v| *v = 0.0);
        r
    }

    fn run_phase_sparse(&mut self) -> Result<(), SolveError> {
        loop {
            if self.iterations >= self.iteration_limit {
                return Err(SolveError::IterationLimit);
            }
            self.iterations += 1;
            if !self.step_sparse()? {
                return Ok(());
            }
        }
    }

    /// Admissibility and score of nonbasic column `j` against the current
    /// duals, mirroring the dense
    /// [`choose_entering`](SimplexWorkspace::choose_entering) rule.
    #[inline]
    fn price_col(&self, j: usize) -> Option<(f64, f64)> {
        match self.status[j] {
            VarStatus::Basic => None,
            VarStatus::AtLower => {
                let d = self.cost[j] - self.sparse.matrix.col_dot(j, &self.sparse.y);
                (d < -EPS).then_some((1.0, -d))
            }
            VarStatus::AtUpper => {
                let d = self.cost[j] - self.sparse.matrix.col_dot(j, &self.sparse.y);
                (d > EPS).then_some((-1.0, d))
            }
        }
    }

    /// Price against freshly BTRANed duals (cached across bound flips,
    /// which leave the basis — and hence the duals — unchanged).
    ///
    /// Unlike the dense path, reduced costs are not maintained; each one
    /// is a small gather, so a full Dantzig scan per iteration would make
    /// the *scan* the dominant per-iteration cost at partitioning sizes.
    /// Instead: **sectional partial pricing** — take the best admissible
    /// column within a rotating section, falling through to the next
    /// section (wrapping once around, which doubles as the optimality
    /// certificate) only when a section prices clean. Under Bland's rule
    /// the scan is always full and lowest-index-first, so the
    /// anti-cycling guarantee is untouched.
    fn price_sparse(&mut self, bland: bool) -> Option<(usize, f64)> {
        if !self.sparse.duals_fresh {
            for k in 0..self.m {
                self.sparse.wpos[k] = self.cost[self.basis[k]];
            }
            self.sparse.btran_duals();
            self.sparse.duals_fresh = true;
        }
        if bland {
            for j in 0..self.scan_limit {
                if let Some((dir, _)) = self.price_col(j) {
                    return Some((j, dir));
                }
            }
            return None;
        }
        let n = self.scan_limit;
        let section = 64.max(n / 8);
        let mut j = if self.price_cursor < n {
            self.price_cursor
        } else {
            0
        };
        let mut scanned = 0;
        while scanned < n {
            let stop = (scanned + section).min(n);
            let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
            while scanned < stop {
                if let Some((dir, score)) = self.price_col(j) {
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, dir, score));
                    }
                }
                j += 1;
                if j == n {
                    j = 0;
                }
                scanned += 1;
            }
            if let Some((col, dir, _)) = best {
                self.price_cursor = j;
                return Some((col, dir));
            }
        }
        None
    }

    /// One revised-simplex iteration: price, FTRAN the entering column,
    /// run the dense backend's exact bounded ratio test against `α`, then
    /// either bound-flip or pivot (recording an eta).
    fn step_sparse(&mut self) -> Result<bool, SolveError> {
        let bland = self.force_bland || self.degenerate_run > DEGENERATE_LIMIT;
        let Some((e, dir)) = self.price_sparse(bland) else {
            return Ok(false);
        };
        self.sparse.ftran_col(e);

        let flip = self.upper[e] - self.lower[e];
        let mut best_t = f64::INFINITY;
        let mut best_row: Option<usize> = None;
        let mut best_coef = 0.0f64;
        for idx in 0..self.sparse.alpha_nnz.len() {
            let i = self.sparse.alpha_nnz[idx];
            let coef = self.sparse.alpha[i];
            if coef.abs() < PIVOT_TOL {
                continue;
            }
            let xb = self.basis[i];
            let v = self.x[xb];
            let rate = -dir * coef;
            let limit = if rate > 0.0 {
                if !self.upper[xb].is_finite() {
                    continue;
                }
                ((self.upper[xb] - v) / rate).max(0.0)
            } else {
                ((v - self.lower[xb]) / -rate).max(0.0)
            };
            let take = if limit < best_t - EPS {
                true
            } else if limit <= best_t + EPS {
                match best_row {
                    None => true,
                    Some(br) => {
                        if bland {
                            i < br
                        } else {
                            coef.abs() > best_coef
                        }
                    }
                }
            } else {
                false
            };
            if take {
                best_t = best_t.min(limit);
                best_row = Some(i);
                best_coef = coef.abs();
            }
        }

        if best_row.is_none() && !flip.is_finite() {
            return Err(SolveError::Unbounded);
        }

        if flip < best_t {
            self.apply_move_sparse(e, dir, flip);
            self.status[e] = match self.status[e] {
                VarStatus::AtLower => VarStatus::AtUpper,
                VarStatus::AtUpper => VarStatus::AtLower,
                VarStatus::Basic => unreachable!("entering var is nonbasic"),
            };
            self.x[e] = match self.status[e] {
                VarStatus::AtUpper => self.upper[e],
                _ => self.lower[e],
            };
            self.degenerate_run = if flip <= EPS {
                self.degenerate_run + 1
            } else {
                0
            };
            return Ok(true);
        }

        let r = best_row.expect("blocking row exists when flip does not apply");
        let t_star = best_t;
        self.apply_move_sparse(e, dir, t_star);
        let leaving = self.basis[r];
        let coef = self.sparse.alpha[r];
        let rate = -dir * coef;
        self.status[leaving] = if rate > 0.0 {
            self.x[leaving] = self.upper[leaving];
            VarStatus::AtUpper
        } else {
            self.x[leaving] = self.lower[leaving];
            VarStatus::AtLower
        };
        self.status[e] = VarStatus::Basic;
        self.basis[r] = e;
        self.pivot_sparse(r)?;
        self.degenerate_run = if t_star <= EPS {
            self.degenerate_run + 1
        } else {
            0
        };
        Ok(true)
    }

    /// Move entering variable `e` by `t` along `dir`, updating the basic
    /// values through the live entries of the entering column `α`.
    fn apply_move_sparse(&mut self, e: usize, dir: f64, t: f64) {
        if t == 0.0 {
            return;
        }
        self.x[e] += dir * t;
        for idx in 0..self.sparse.alpha_nnz.len() {
            let i = self.sparse.alpha_nnz[idx];
            let coef = self.sparse.alpha[i];
            if coef != 0.0 {
                let xb = self.basis[i];
                self.x[xb] -= dir * t * coef;
            }
        }
    }

    /// Record the basis change at position `r`: append an eta, and
    /// refactorize (recomputing `x_B` to shed drift) once the eta file
    /// reaches [`REFACTOR_PERIOD`].
    fn pivot_sparse(&mut self, r: usize) -> Result<(), SolveError> {
        self.sparse.duals_fresh = false;
        self.sparse.push_eta(r);
        if self.sparse.due_for_refactor(self.m) {
            if !self.sparse.refactor(&self.basis) {
                // A running basis only goes singular through roundoff;
                // surface it as numerical trouble. Warm solves turn this
                // into a cold retry, and the cold path in `solve_lp_in`
                // re-derives the verdict on the dense oracle.
                return Err(SolveError::IterationLimit);
            }
            self.recompute_basic_x_sparse();
        }
        Ok(())
    }

    /// Bounded-variable dual simplex on the factorization — the sparse
    /// twin of [`dual_repair`](SimplexWorkspace::dual_repair), with the
    /// pivot row obtained by BTRAN of `e_r` and reduced costs from the
    /// per-iteration duals instead of a maintained objective row.
    fn dual_repair_sparse(&mut self, budget: u64) -> DualOutcome {
        // Reduced costs once at entry; each pivot then updates them with
        // the standard dual-simplex rule `y' = y + θ·ρ` (θ = d_e/α_re),
        // i.e. `acc_y += θ·acc_rho` — an O(n) pass instead of a second
        // BTRAN + transpose per iteration. The primal phase that follows
        // re-prices from scratch, so drift here can only affect pivot
        // choice, never the verdict.
        for k in 0..self.m {
            self.sparse.wpos[k] = self.cost[self.basis[k]];
        }
        self.sparse.btran_duals();
        let limit = self.first_artificial;
        self.sparse.refresh_acc_y(limit);
        loop {
            if self.iterations >= budget {
                return DualOutcome::GiveUp;
            }
            let mut leave: Option<(usize, bool, f64)> = None; // (row, above, viol)
            for i in 0..self.m {
                let xb = self.basis[i];
                let v = self.x[xb];
                let (viol, above) = if v > self.upper[xb] + DUAL_FEAS_TOL {
                    (v - self.upper[xb], true)
                } else if v < self.lower[xb] - DUAL_FEAS_TOL {
                    (self.lower[xb] - v, false)
                } else {
                    continue;
                };
                if leave.is_none_or(|(_, _, w)| viol > w) {
                    leave = Some((i, above, viol));
                }
            }
            let Some((r, above, _)) = leave else {
                return DualOutcome::Feasible;
            };
            self.iterations += 1;

            // Pivot row for the ratios (reduced costs are maintained).
            self.sparse.btran_row(r);
            self.sparse.refresh_acc_rho(limit);

            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            let mut dubious = false;
            for j in 0..self.first_artificial {
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let alpha = self.sparse.acc_rho[j];
                if alpha.abs() < EPS {
                    continue;
                }
                let (admissible, d_eff) = match self.status[j] {
                    VarStatus::Basic => continue,
                    VarStatus::AtLower => {
                        let a_eff = if above { alpha } else { -alpha };
                        let d = self.cost[j] - self.sparse.acc_y[j];
                        (a_eff > 0.0, d.max(0.0))
                    }
                    VarStatus::AtUpper => {
                        let a_eff = if above { -alpha } else { alpha };
                        let d = self.cost[j] - self.sparse.acc_y[j];
                        (a_eff > 0.0, (-d).max(0.0))
                    }
                };
                if !admissible {
                    continue;
                }
                if alpha.abs() < PIVOT_TOL {
                    dubious = true;
                    continue;
                }
                let ratio = d_eff / alpha.abs();
                let take = match best {
                    None => true,
                    Some((_, br, ba)) => {
                        ratio < br - EPS || (ratio <= br + EPS && alpha.abs() > ba)
                    }
                };
                if take {
                    best = Some((j, ratio, alpha.abs()));
                }
            }

            match best {
                None => {
                    return if dubious {
                        DualOutcome::GiveUp
                    } else {
                        DualOutcome::Infeasible
                    };
                }
                Some((e, _, _)) => {
                    self.sparse.ftran_col(e);
                    let alpha = self.sparse.alpha_at(r);
                    if alpha.abs() < PIVOT_TOL * 0.5 {
                        // FTRAN disagrees with the BTRANed row value:
                        // the factorization is too frayed to trust.
                        return DualOutcome::GiveUp;
                    }
                    // Maintain the reduced costs through the basis change.
                    let theta = (self.cost[e] - self.sparse.acc_y[e]) / alpha;
                    if theta != 0.0 {
                        for j in 0..self.first_artificial {
                            self.sparse.acc_y[j] += theta * self.sparse.acc_rho[j];
                        }
                    }
                    let leaving = self.basis[r];
                    let target = if above {
                        self.upper[leaving]
                    } else {
                        self.lower[leaving]
                    };
                    let delta = (self.x[leaving] - target) / alpha;
                    self.apply_move_sparse(e, delta.signum(), delta.abs());
                    self.x[leaving] = target;
                    self.status[leaving] = if above {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.status[e] = VarStatus::Basic;
                    self.basis[r] = e;
                    if self.pivot_sparse(r).is_err() {
                        return DualOutcome::GiveUp;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::problem::{Problem, Sense, SolveError};
    use crate::simplex::{solve_lp_in, solve_lp_with_bounds};
    use crate::workspace::{SimplexWorkspace, SolverBackend};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} != {b}");
    }

    /// A long reducing chain with a tight budget row: the kind of LP the
    /// partitioner emits, sized to force well over 100 pivots.
    fn long_chain(n: usize) -> Problem {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_var(0.0, 1.0, -1.0 - ((i * 7) % 11) as f64 * 0.13, false))
            .collect();
        for w in vars.windows(2) {
            p.add_constraint(&[(w[0], 1.0), (w[1], -1.0)], Sense::Ge, 0.0);
        }
        let row: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 0.4 + ((i * 3) % 5) as f64 * 0.2))
            .collect();
        p.add_constraint(&row, Sense::Le, 0.35 * n as f64);
        p
    }

    #[test]
    fn lu_drift_stays_bounded_over_100_plus_pivots() {
        // The eta file + periodic refactorization must keep the basis
        // residual ‖A·x − b‖∞ at solver tolerance across a solve long
        // enough to span several refactorization cycles.
        let p = long_chain(400);
        let mut ws = SimplexWorkspace::new();
        ws.set_backend(SolverBackend::Sparse);
        let s = solve_lp_in(&p, &p.lower, &p.upper, 100_000, &mut ws, false).unwrap();
        assert!(
            s.iterations >= 100,
            "instance must exercise ≥100 pivots (several refactor cycles), got {}",
            s.iterations
        );
        let drift = ws.sparse_residual_inf();
        assert!(
            drift < 1e-6,
            "factorization drift {drift} exceeds solver tolerance after {} pivots",
            s.iterations
        );
        // And the answer matches the dense oracle.
        let dense = solve_lp_with_bounds(&p, &p.lower, &p.upper, 100_000).unwrap();
        assert_close(s.objective, dense.objective);
    }

    #[test]
    fn drift_bounded_through_warm_resolves_too() {
        // Dual-repair pivots go through the same eta/refactor machinery;
        // the invariant must survive a chain of warm re-solves.
        let p = long_chain(150);
        let mut ws = SimplexWorkspace::new();
        ws.set_backend(SolverBackend::Sparse);
        solve_lp_in(&p, &p.lower, &p.upper, 100_000, &mut ws, true).unwrap();
        let mut upper = p.upper.clone();
        for step in 0..8 {
            // Tighten a different block of variables to 0 each round.
            for u in upper.iter_mut().skip(step * 12).take(8) {
                *u = 0.0;
            }
            let warm = solve_lp_in(&p, &p.lower, &upper, 100_000, &mut ws, true).unwrap();
            let drift = ws.sparse_residual_inf();
            assert!(drift < 1e-6, "round {step}: drift {drift}");
            let cold = solve_lp_with_bounds(&p, &p.lower, &upper, 100_000).unwrap();
            assert_close(warm.objective, cold.objective);
        }
    }

    #[test]
    fn forced_bland_rule_reaches_the_same_optimum() {
        // Pin the Bland's-rule fallback path itself (not just the trigger):
        // an entire solve priced lowest-admissible-index-first must reach
        // the same optimum on both backends.
        let p = long_chain(60);
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut plain_ws = SimplexWorkspace::new();
            plain_ws.set_backend(backend);
            let plain = solve_lp_in(&p, &p.lower, &p.upper, 100_000, &mut plain_ws, false).unwrap();
            let mut bland_ws = SimplexWorkspace::new();
            bland_ws.set_backend(backend);
            bland_ws.force_bland = true;
            let bland = solve_lp_in(&p, &p.lower, &p.upper, 100_000, &mut bland_ws, false).unwrap();
            assert_close(bland.objective, plain.objective);
        }
    }

    #[test]
    fn forced_bland_detects_infeasibility_and_unboundedness() {
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut p = Problem::new();
            let x = p.add_var(0.0, 1.0, 1.0, false);
            p.add_constraint(&[(x, 1.0)], Sense::Ge, 2.0);
            let mut ws = SimplexWorkspace::new();
            ws.set_backend(backend);
            ws.force_bland = true;
            let r = solve_lp_in(&p, &p.lower, &p.upper, 10_000, &mut ws, false);
            assert_eq!(r, Err(SolveError::Infeasible), "{backend:?}");

            let mut q = Problem::new();
            let y = q.add_var(0.0, f64::INFINITY, -1.0, false);
            q.add_constraint(&[(y, -1.0)], Sense::Le, 0.0);
            let mut ws = SimplexWorkspace::new();
            ws.set_backend(backend);
            ws.force_bland = true;
            let r = solve_lp_in(&q, &q.lower, &q.upper, 10_000, &mut ws, false);
            assert_eq!(r, Err(SolveError::Unbounded), "{backend:?}");
        }
    }
}
