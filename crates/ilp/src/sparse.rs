//! Compressed-sparse-column (CSC) storage for the revised simplex.
//!
//! Wishbone's partitioning LPs are extremely sparse — a precedence row
//! `f_u − f_v ≥ 0` has two nonzeros, the budget rows one nonzero per
//! vertex — so the constraint matrix holds ≈2 nonzeros per row while the
//! dense tableau stores (and streams, every pivot) `m × n` floats. The
//! revised simplex only ever needs two views of the matrix: a *column*
//! (to FTRAN an entering variable or scatter a nonbasic contribution) and
//! a *column dot a dense vector* (to price reduced costs against the
//! duals). CSC serves both in `O(nnz(column))`.
//!
//! The matrix is rebuilt on every cold load — `O(nnz)`, a rounding error
//! next to a single simplex iteration — so it never goes stale against
//! the `Problem` the way a retained factorization could.

use crate::problem::{Problem, Sense};

/// A read-only CSC matrix over the simplex's full column space:
/// structural variables, then one slack per inequality row, then one
/// (signed) artificial per row — the same column layout the dense
/// tableau uses, so basis/status bookkeeping is backend-agnostic.
#[derive(Debug, Default)]
pub(crate) struct CscMatrix {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub(crate) fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn cols(&self) -> usize {
        self.col_ptr.len().saturating_sub(1)
    }

    /// Stored entries (duplicates from repeated constraint terms count).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column `j` as parallel `(rows, values)` slices.
    pub(crate) fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// `aⱼ · v` for a dense `v` indexed by row. Hot in pricing (called
    /// once per nonbasic column per iteration), hence inlined — the
    /// column ranges read sequentially and `v` stays cache-resident.
    #[inline]
    pub(crate) fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&i, &a)| a * v[i]).sum()
    }

    /// `out += scale · aⱼ` for a dense `out` indexed by row.
    pub(crate) fn axpy_col(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&i, &a) in rows.iter().zip(vals) {
            out[i] += scale * a;
        }
    }

    /// Rebuild from `problem`, with `art_sign[i]` the ±1 coefficient of
    /// row `i`'s artificial column (chosen by the loader so the
    /// artificial's starting value is nonnegative). Reuses every buffer.
    pub(crate) fn load(&mut self, problem: &Problem, art_sign: &[f64]) {
        let m = problem.num_constraints();
        let n_structural = problem.num_vars();
        self.m = m;

        // Structural columns: counting pass, prefix sums, cursor fill.
        let nnz_structural: usize = problem.constraints.iter().map(|c| c.terms.len()).sum();
        let n_slack = problem
            .constraints
            .iter()
            .filter(|c| c.sense != Sense::Eq)
            .count();
        self.col_ptr.clear();
        self.col_ptr.resize(n_structural + 1, 0);
        for c in &problem.constraints {
            for &(v, _) in &c.terms {
                self.col_ptr[v.0 + 1] += 1;
            }
        }
        for j in 0..n_structural {
            let prev = self.col_ptr[j];
            self.col_ptr[j + 1] += prev;
        }
        self.row_idx.clear();
        self.row_idx.resize(nnz_structural, 0);
        self.values.clear();
        self.values.resize(nnz_structural, 0.0);
        let mut cursor: Vec<usize> = self.col_ptr[..n_structural].to_vec();
        for (i, c) in problem.constraints.iter().enumerate() {
            for &(v, a) in &c.terms {
                let pos = cursor[v.0];
                cursor[v.0] += 1;
                self.row_idx[pos] = i;
                self.values[pos] = a;
            }
        }

        // Slack columns (one per inequality, in row order), then signed
        // artificial columns (one per row).
        self.col_ptr.reserve(n_slack + m);
        for (i, c) in problem.constraints.iter().enumerate() {
            let coef = match c.sense {
                Sense::Le => 1.0,
                Sense::Ge => -1.0,
                Sense::Eq => continue,
            };
            self.row_idx.push(i);
            self.values.push(coef);
            self.col_ptr.push(self.row_idx.len());
        }
        for (i, &sign) in art_sign.iter().enumerate() {
            self.row_idx.push(i);
            self.values.push(sign);
            self.col_ptr.push(self.row_idx.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn sample() -> (Problem, Vec<f64>) {
        // x + 2y <= 4 ; x - y >= 1 ; x + y = 3
        let mut p = Problem::new();
        let x = p.add_var(0.0, 10.0, 1.0, false);
        let y = p.add_var(0.0, 10.0, 1.0, false);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Sense::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Sense::Ge, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Eq, 3.0);
        (p, vec![1.0, -1.0, 1.0])
    }

    #[test]
    fn layout_matches_dense_column_order() {
        let (p, signs) = sample();
        let mut a = CscMatrix::default();
        a.load(&p, &signs);
        // 2 structural + 2 slack (rows 0, 1) + 3 artificial.
        assert_eq!(a.cols(), 7);
        assert_eq!(a.rows(), 3);
        // Column x hits all three rows with coefficient 1.
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 1, 2]);
        assert_eq!(vals, &[1.0, 1.0, 1.0]);
        // Slack of the Ge row is -1 in row 1.
        let (rows, vals) = a.col(3);
        assert_eq!(rows, &[1]);
        assert_eq!(vals, &[-1.0]);
        // Artificial of row 1 carries the provided sign.
        let (rows, vals) = a.col(5);
        assert_eq!(rows, &[1]);
        assert_eq!(vals, &[-1.0]);
    }

    #[test]
    fn dot_and_axpy_agree_with_dense_math() {
        let (p, signs) = sample();
        let mut a = CscMatrix::default();
        a.load(&p, &signs);
        let v = [2.0, 3.0, 5.0];
        // y column: [2, -1, 1] · [2, 3, 5] = 4 - 3 + 5 = 6.
        assert!((a.col_dot(1, &v) - 6.0).abs() < 1e-12);
        let mut out = [0.0; 3];
        a.axpy_col(1, 2.0, &mut out);
        assert_eq!(out, [4.0, -2.0, 2.0]);
    }

    #[test]
    fn reload_reuses_buffers() {
        let (p, signs) = sample();
        let mut a = CscMatrix::default();
        a.load(&p, &signs);
        let nnz = a.nnz();
        a.load(&p, &signs);
        assert_eq!(a.nnz(), nnz);
        assert_eq!(a.cols(), 7);
    }
}
