//! LU factorization of the simplex basis, with eta-file updates.
//!
//! The revised simplex never forms `B⁻¹`; it answers two questions per
//! iteration — `B·w = a` (**FTRAN**: the entering column in the basis
//! frame) and `Bᵀ·y = c_B` (**BTRAN**: the duals, or a single tableau
//! row) — against a factorization `P·B = L·U` built by left-looking
//! Gaussian elimination with partial pivoting. On Wishbone's ≈2-nonzero
//! rows `L` and `U` stay nearly as sparse as `B` itself, so both solves
//! are `O(nnz)` instead of the dense tableau's `O(m·n)` pivot.
//!
//! Basis changes do not refactorize: each pivot appends a product-form
//! **eta** (the entering column in the old basis frame), applied after
//! `L·U` on FTRAN and before it (transposed, in reverse) on BTRAN. After
//! [`REFACTOR_PERIOD`] etas the caller refactorizes from scratch, which
//! both caps the eta file and discards accumulated roundoff — the drift
//! bound the regression tests pin.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::num::is_exact_zero;
use crate::sparse::CscMatrix;

/// Hard cap on eta updates between refactorizations. Each eta costs
/// `O(nnz(α))` per solve, so together with [`ETA_NNZ_FACTOR`] this bounds
/// FTRAN/BTRAN work *and* numerical drift.
pub(crate) const REFACTOR_PERIOD: usize = 64;

/// Refactorize once the eta file holds more than this many nonzeros per
/// basis row. Entering columns on chain-structured bases densify (the
/// inverse of a bidiagonal matrix is full), so a count-based period alone
/// would let FTRAN/BTRAN degrade to `O(period · m)`; budgeting total eta
/// nonzeros keeps the update cost at a small constant times the
/// factorization cost regardless of fill.
pub(crate) const ETA_NNZ_FACTOR: usize = 4;

/// Pivots smaller than this during factorization mean the basis is
/// numerically singular and the caller must recover (cold restart).
const SINGULAR_TOL: f64 = 1e-10;

/// Entries below this are dropped when harvesting an eta column.
const ETA_DROP_TOL: f64 = 1e-13;

/// One product-form update: the entering column `α = B⁻¹·a_e` at the
/// moment of the pivot, split into the pivot element and the off-pivot
/// nonzeros. Indices are *basis positions*.
#[derive(Debug)]
pub(crate) struct Eta {
    r: usize,
    pivot: f64,
    entries: Vec<(usize, f64)>,
}

impl Eta {
    /// Harvest an eta from a dense entering column `alpha` (by basis
    /// position) pivoting at position `r`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_column(r: usize, alpha: &[f64]) -> Eta {
        let entries = alpha
            .iter()
            .enumerate()
            .filter(|&(i, &a)| i != r && a.abs() > ETA_DROP_TOL)
            .map(|(i, &a)| (i, a))
            .collect();
        Eta {
            r,
            pivot: alpha[r],
            entries,
        }
    }

    /// Harvest from a sparse column: only the positions listed in `nnz`
    /// are live (the rest of `alpha` is stale storage).
    pub(crate) fn from_sparse(r: usize, alpha: &[f64], nnz: &[usize]) -> Eta {
        let entries = nnz
            .iter()
            .filter(|&&i| i != r && alpha[i].abs() > ETA_DROP_TOL)
            .map(|&i| (i, alpha[i]))
            .collect();
        Eta {
            r,
            pivot: alpha[r],
            entries,
        }
    }

    /// Stored nonzeros (for the refactorization budget).
    pub(crate) fn nnz(&self) -> usize {
        self.entries.len() + 1
    }

    /// FTRAN update: replace `w` by `E⁻¹·w` (chronological order).
    pub(crate) fn apply_ftran(&self, w: &mut [f64]) {
        let wr = w[self.r] / self.pivot;
        if !is_exact_zero(wr) {
            for &(i, a) in &self.entries {
                w[i] -= a * wr;
            }
        }
        w[self.r] = wr;
    }

    /// FTRAN update on a stamped sparse column: positions outside the
    /// current-epoch stamp set are zero by contract (their storage is
    /// stale); any position this eta touches joins the set.
    pub(crate) fn apply_ftran_sparse(
        &self,
        w: &mut [f64],
        stamp: &mut [u64],
        epoch: u64,
        nnz: &mut Vec<usize>,
    ) {
        let live_r = stamp[self.r] == epoch;
        let wr = if live_r { w[self.r] / self.pivot } else { 0.0 };
        if !is_exact_zero(wr) {
            for &(i, a) in &self.entries {
                if stamp[i] != epoch {
                    stamp[i] = epoch;
                    w[i] = 0.0;
                    nnz.push(i);
                }
                w[i] -= a * wr;
            }
        }
        if !live_r {
            stamp[self.r] = epoch;
            nnz.push(self.r);
        }
        w[self.r] = wr;
    }

    /// BTRAN update: replace `c` by `E⁻ᵀ·c` (reverse chronological order,
    /// applied before the base `LᵀUᵀ` solve).
    pub(crate) fn apply_btran(&self, c: &mut [f64]) {
        let mut v = c[self.r];
        for &(i, a) in &self.entries {
            v -= a * c[i];
        }
        c[self.r] = v / self.pivot;
    }
}

/// `P_r·B·P_c = L·U`: a row permutation from partial pivoting plus a
/// *column* permutation from a singleton-peel preorder. `L` is
/// unit-lower-triangular, stored by factor step as `(original_row,
/// multiplier)` pairs; `U` is stored by factor step as `(factor_step,
/// value)` pairs above a separate diagonal.
///
/// The column preorder is what keeps the factors sparse: a simplex basis
/// arrives in pivot-scrambled order, and factoring chain-structured
/// columns out of order cascades fill through `U` (`O(m²)` on Wishbone's
/// precedence chains). Peeling column singletons — repeatedly factoring
/// any column with exactly one unpivoted row, the standard LP "crash
/// triangularization" — reorders the basis so the peeled prefix factors
/// with **zero fill**; only the residual bump (typically the one
/// budget-row column) pays for general elimination.
#[derive(Debug, Default)]
pub(crate) struct LuFactors {
    m: usize,
    /// `prow[s]` = original row chosen as the pivot of factor step `s`.
    prow: Vec<usize>,
    /// `pcol[s]` = basis position factored at step `s`.
    pcol: Vec<usize>,
    /// `ppos[i]` = factor step of original row `i` (`usize::MAX` while
    /// unpivoted during factorization).
    ppos: Vec<usize>,
    // L and U stored flat (CSC-style, one range per factor step) — tight
    // sequential loops in the hot solves instead of a pointer chase per
    // step through nested Vecs.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_ptr: Vec<usize>,
    u_steps: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Dense scratch indexed by original row, zeroed between uses.
    work: Vec<f64>,
    /// Dense scratch indexed by factor step (BTRAN intermediate).
    zwork: Vec<f64>,
    /// Pending factor steps whose rows went nonzero during the current
    /// column's elimination (min-heap: elimination must run in factor
    /// order). Keeping it sparse is what makes factorization `O(flops)`
    /// instead of `O(m²)` on these ≈2-nonzero-per-row bases.
    pending: BinaryHeap<Reverse<usize>>,
    /// Unpivoted rows that went nonzero (pivot candidates / L entries).
    cand: Vec<usize>,
    /// Pivoted rows hit by the current column (fast path, see below).
    hit: Vec<usize>,
    /// Cursor scratch for the row-map counting sort.
    row_cursor: Vec<usize>,
    // Singleton-peel scratch (all reused across factorizations).
    peel_count: Vec<usize>,
    peel_done: Vec<bool>,
    row_used: Vec<bool>,
    row_ptr: Vec<usize>,
    row_elems: Vec<usize>,
    peel_stack: Vec<usize>,
}

impl LuFactors {
    /// Factorize the basis `B = [a_{basis[0]} … a_{basis[m-1]}]` drawn
    /// from `matrix`. Returns `false` on a numerically singular basis.
    /// Reuses every buffer across refactorizations.
    pub(crate) fn factorize(&mut self, matrix: &CscMatrix, basis: &[usize]) -> bool {
        let m = matrix.rows();
        debug_assert_eq!(basis.len(), m);
        self.m = m;
        self.prow.clear();
        self.ppos.clear();
        self.ppos.resize(m, usize::MAX);
        self.u_diag.clear();
        self.u_diag.resize(m, 0.0);
        self.work.clear();
        self.work.resize(m, 0.0);
        self.zwork.clear();
        self.zwork.resize(m, 0.0);
        self.l_ptr.clear();
        self.l_ptr.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_ptr.clear();
        self.u_ptr.push(0);
        self.u_steps.clear();
        self.u_vals.clear();

        self.peel_order(matrix, basis);

        for s in 0..m {
            let k = self.pcol[s];
            // Scatter basis column k, tracking which rows went nonzero:
            // already-pivoted rows await elimination, unpivoted rows are
            // pivot candidates.
            self.pending.clear();
            self.cand.clear();
            self.hit.clear();
            let (rows, vals) = matrix.col(basis[k]);
            let no_fill_yet = self.l_rows.is_empty();
            for (&i, &a) in rows.iter().zip(vals) {
                let was = self.work[i];
                self.work[i] = was + a; // duplicate terms accumulate
                if is_exact_zero(was) {
                    if self.ppos[i] == usize::MAX {
                        self.cand.push(i);
                    } else if no_fill_yet {
                        self.hit.push(i);
                    } else {
                        self.pending.push(Reverse(self.ppos[i]));
                    }
                }
            }
            if no_fill_yet {
                // Fast path: every `L` column so far is empty (true for
                // the whole singleton-peel prefix, i.e. usually the whole
                // basis), so elimination cannot create fill and order is
                // irrelevant — pivoted entries drop straight into `U`.
                for idx in 0..self.hit.len() {
                    let i = self.hit[idx];
                    let v = self.work[i];
                    if !is_exact_zero(v) {
                        self.work[i] = 0.0;
                        self.u_steps.push(self.ppos[i]);
                        self.u_vals.push(v);
                    }
                }
            }
            // Eliminate — a sparse forward solve `L·y = P·a` visiting only
            // the rows that are actually nonzero. Fill from an L column
            // can only land on rows pivoted *later* (or not yet), so the
            // increasing-position (min-heap) pop order is a valid
            // elimination order.
            while let Some(Reverse(t)) = self.pending.pop() {
                let v = self.work[self.prow[t]];
                if is_exact_zero(v) {
                    continue; // duplicate queue entry, already consumed
                }
                self.work[self.prow[t]] = 0.0;
                self.u_steps.push(t);
                self.u_vals.push(v);
                for idx in self.l_ptr[t]..self.l_ptr[t + 1] {
                    let i = self.l_rows[idx];
                    let was = self.work[i];
                    self.work[i] = was - self.l_vals[idx] * v;
                    if is_exact_zero(was) {
                        if self.ppos[i] == usize::MAX {
                            self.cand.push(i);
                        } else {
                            self.pending.push(Reverse(self.ppos[i]));
                        }
                    }
                }
            }
            // Partial pivoting over the candidate rows.
            let mut ipiv = usize::MAX;
            let mut best = 0.0f64;
            for &i in &self.cand {
                let v = self.work[i].abs();
                if v > best {
                    best = v;
                    ipiv = i;
                }
            }
            if best < SINGULAR_TOL {
                // Leave scratch clean for the next attempt.
                for &i in &self.cand {
                    self.work[i] = 0.0;
                }
                return false;
            }
            let piv = self.work[ipiv];
            self.work[ipiv] = 0.0;
            self.u_diag[s] = piv;
            self.prow.push(ipiv);
            self.ppos[ipiv] = s;
            for idx in 0..self.cand.len() {
                let i = self.cand[idx];
                let v = self.work[i];
                // Zero-valued or duplicate candidates drop out here.
                if !is_exact_zero(v) {
                    self.l_rows.push(i);
                    self.l_vals.push(v / piv);
                    self.work[i] = 0.0;
                }
            }
            self.l_ptr.push(self.l_rows.len());
            self.u_ptr.push(self.u_steps.len());
        }
        true
    }

    /// Compute the factor-order column permutation `pcol` by peeling
    /// column singletons: any basis column with exactly one entry in a
    /// still-unpivoted row factors with an empty `L` column, so every
    /// column it uncovers afterwards also factors fill-free. Leftover
    /// "bump" columns (no singleton available — e.g. the column that
    /// closes a dense budget row) are appended in basis order for the
    /// general elimination above. `O(nnz)`.
    fn peel_order(&mut self, matrix: &CscMatrix, basis: &[usize]) {
        let m = self.m;
        self.pcol.clear();
        self.peel_count.clear();
        self.peel_done.clear();
        self.peel_done.resize(m, false);
        self.row_used.clear();
        self.row_used.resize(m, false);
        self.peel_stack.clear();

        // Row → containing-columns map, counting-sort flat.
        self.row_ptr.clear();
        self.row_ptr.resize(m + 1, 0);
        let mut nnz = 0;
        for &j in basis {
            let (rows, _) = matrix.col(j);
            for &i in rows {
                self.row_ptr[i + 1] += 1;
            }
            nnz += rows.len();
        }
        for i in 0..m {
            let prev = self.row_ptr[i];
            self.row_ptr[i + 1] += prev;
        }
        self.row_elems.clear();
        self.row_elems.resize(nnz, 0);
        self.row_cursor.clear();
        self.row_cursor.extend_from_slice(&self.row_ptr[..m]);
        for (k, &j) in basis.iter().enumerate() {
            let (rows, _) = matrix.col(j);
            for &i in rows {
                self.row_elems[self.row_cursor[i]] = k;
                self.row_cursor[i] += 1;
            }
        }

        for (k, &j) in basis.iter().enumerate() {
            let (rows, _) = matrix.col(j);
            self.peel_count.push(rows.len());
            if rows.len() == 1 {
                self.peel_stack.push(k);
            }
        }
        while let Some(k) = self.peel_stack.pop() {
            if self.peel_done[k] || self.peel_count[k] != 1 {
                continue;
            }
            let (rows, vals) = matrix.col(basis[k]);
            let mut row = usize::MAX;
            let mut val = 0.0;
            for (&i, &a) in rows.iter().zip(vals) {
                if !self.row_used[i] {
                    row = i;
                    val = a;
                }
            }
            if row == usize::MAX || val.abs() < SINGULAR_TOL {
                continue; // tiny pivot: leave it for the bump
            }
            self.peel_done[k] = true;
            self.row_used[row] = true;
            self.pcol.push(k);
            for idx in self.row_ptr[row]..self.row_ptr[row + 1] {
                let k2 = self.row_elems[idx];
                if !self.peel_done[k2] {
                    self.peel_count[k2] -= 1;
                    if self.peel_count[k2] == 1 {
                        self.peel_stack.push(k2);
                    }
                }
            }
        }
        for k in 0..m {
            if !self.peel_done[k] {
                self.pcol.push(k);
            }
        }
    }

    /// FTRAN: solve `B·x = w` where `w` arrives dense, indexed by
    /// original row, and is consumed (zeroed). `out[k]` receives the
    /// solution by basis position; every position is written (dense).
    pub(crate) fn ftran(&self, w: &mut [f64], out: &mut [f64]) {
        self.ftran_forward(w);
        // Backward: U·x' = y, consuming w; x'[s] is the value of the
        // basis position factored at step s.
        for s in (0..self.m).rev() {
            let num = w[self.prow[s]];
            if is_exact_zero(num) {
                out[self.pcol[s]] = 0.0;
                continue;
            }
            w[self.prow[s]] = 0.0;
            let xk = num / self.u_diag[s];
            out[self.pcol[s]] = xk;
            for idx in self.u_ptr[s]..self.u_ptr[s + 1] {
                w[self.prow[self.u_steps[idx]]] -= self.u_vals[idx] * xk;
            }
        }
    }

    /// FTRAN writing only the nonzero result positions, each pushed onto
    /// `nnz` — stale `out` entries at unlisted positions are the caller's
    /// contract to never read. This keeps every consumer of a sparse
    /// entering column `O(nnz(α))` instead of `O(m)`.
    pub(crate) fn ftran_sparse(&self, w: &mut [f64], out: &mut [f64], nnz: &mut Vec<usize>) {
        self.ftran_forward(w);
        for s in (0..self.m).rev() {
            let num = w[self.prow[s]];
            if is_exact_zero(num) {
                continue;
            }
            w[self.prow[s]] = 0.0;
            let xk = num / self.u_diag[s];
            out[self.pcol[s]] = xk;
            nnz.push(self.pcol[s]);
            for idx in self.u_ptr[s]..self.u_ptr[s + 1] {
                w[self.prow[self.u_steps[idx]]] -= self.u_vals[idx] * xk;
            }
        }
    }

    /// Forward pass `L·y = P_r·w` shared by both FTRAN variants.
    #[inline]
    fn ftran_forward(&self, w: &mut [f64]) {
        for t in 0..self.m {
            let v = w[self.prow[t]];
            if !is_exact_zero(v) {
                for idx in self.l_ptr[t]..self.l_ptr[t + 1] {
                    w[self.l_rows[idx]] -= self.l_vals[idx] * v;
                }
            }
        }
    }

    /// BTRAN: solve `Bᵀ·y = c` with `c` dense, indexed by basis
    /// position (left unmodified). `y` receives the solution by original
    /// row.
    pub(crate) fn btran(&mut self, c: &[f64], y: &mut [f64]) {
        // Uᵀ·z = P_c·c by forward substitution into the step-indexed
        // scratch.
        for s in 0..self.m {
            let mut v = c[self.pcol[s]];
            for idx in self.u_ptr[s]..self.u_ptr[s + 1] {
                v -= self.u_vals[idx] * self.zwork[self.u_steps[idx]];
            }
            self.zwork[s] = if is_exact_zero(v) {
                0.0
            } else {
                v / self.u_diag[s]
            };
        }
        // Lᵀ·(P_r·y) = z by backward substitution onto original rows.
        for s in (0..self.m).rev() {
            let mut v = self.zwork[s];
            for idx in self.l_ptr[s]..self.l_ptr[s + 1] {
                v -= self.l_vals[idx] * y[self.l_rows[idx]];
            }
            y[self.prow[s]] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    /// Dense multiply `B·x` for checking, columns drawn from `matrix`.
    fn mat_vec(matrix: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; matrix.rows()];
        for (k, &j) in basis.iter().enumerate() {
            matrix.axpy_col(j, x[k], &mut out);
        }
        out
    }

    fn chain_matrix(n: usize) -> CscMatrix {
        // The Wishbone shape: precedence rows x_i - x_{i+1} >= 0 plus a
        // budget row, slacks and artificials appended.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n).map(|_| p.add_var(0.0, 1.0, -1.0, false)).collect();
        for w in vars.windows(2) {
            p.add_constraint(&[(w[0], 1.0), (w[1], -1.0)], Sense::Ge, 0.0);
        }
        let row: Vec<_> = vars.iter().map(|&v| (v, 0.3)).collect();
        p.add_constraint(&row, Sense::Le, 1.0);
        let m = p.num_constraints();
        let mut a = CscMatrix::default();
        a.load(&p, &vec![1.0; m]);
        a
    }

    #[test]
    fn ftran_btran_invert_a_structural_basis() {
        let a = chain_matrix(6);
        let m = a.rows();
        // Mix structural and slack columns into the basis.
        let basis: Vec<usize> = (0..m).map(|i| if i % 2 == 0 { i } else { 6 + i }).collect();
        let mut lu = LuFactors::default();
        assert!(lu.factorize(&a, &basis));

        let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 2.0).collect();
        let mut w = rhs.clone();
        let mut x = vec![0.0; m];
        lu.ftran(&mut w, &mut x);
        assert!(w.iter().all(|&v| v == 0.0), "scratch must come back clean");
        let bx = mat_vec(&a, &basis, &x);
        for (got, want) in bx.iter().zip(&rhs) {
            assert!((got - want).abs() < 1e-9, "B·x = {got} vs rhs {want}");
        }

        // BTRAN: check Bᵀ·y = c against an explicit transpose-multiply.
        let c: Vec<f64> = (0..m).map(|i| 1.0 + i as f64 * 0.5).collect();
        let cin = c.clone();
        let mut y = vec![0.0; m];
        lu.btran(&cin, &mut y);
        for (k, &j) in basis.iter().enumerate() {
            let bty = a.col_dot(j, &y);
            assert!((bty - c[k]).abs() < 1e-9, "col {k}: {bty} vs {}", c[k]);
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let a = chain_matrix(4);
        // Repeat a column: structurally singular.
        let basis: Vec<usize> = vec![0, 0, 1, 2];
        let mut lu = LuFactors::default();
        assert!(!lu.factorize(&a, &basis));
        // The factors must remain usable after a failure + good basis.
        let good: Vec<usize> = (0..a.rows()).map(|i| 6 + i).collect(); // artificials... slacks first
        assert!(lu.factorize(&a, &good));
    }

    #[test]
    fn eta_updates_track_a_basis_change() {
        let a = chain_matrix(5);
        let m = a.rows();
        let basis: Vec<usize> = (0..m).map(|i| 5 + i).collect(); // slack cols of rows 0..3 + art? n=5: slacks 5..9
        let mut lu = LuFactors::default();
        assert!(lu.factorize(&a, &basis));

        // Bring structural column 2 into basis position 1.
        let entering = 2usize;
        let mut w = vec![0.0; m];
        a.axpy_col(entering, 1.0, &mut w);
        let mut alpha = vec![0.0; m];
        lu.ftran(&mut w, &mut alpha);
        let eta = Eta::from_column(1, &alpha);
        let mut new_basis = basis.clone();
        new_basis[1] = entering;

        // FTRAN through (LU, eta) must match a fresh factorization.
        let rhs: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
        let mut w1 = rhs.clone();
        let mut x1 = vec![0.0; m];
        lu.ftran(&mut w1, &mut x1);
        eta.apply_ftran(&mut x1);

        let mut lu2 = LuFactors::default();
        assert!(lu2.factorize(&a, &new_basis));
        let mut w2 = rhs.clone();
        let mut x2 = vec![0.0; m];
        lu2.ftran(&mut w2, &mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9, "eta ftran {u} vs refactor {v}");
        }

        // Same for BTRAN: eta first (reverse order), then base solve.
        let c: Vec<f64> = (0..m).map(|i| (i as f64) * 0.25 - 0.5).collect();
        let mut c1 = c.clone();
        eta.apply_btran(&mut c1);
        let mut y1 = vec![0.0; m];
        lu.btran(&c1, &mut y1);
        let c2 = c.clone();
        let mut y2 = vec![0.0; m];
        lu2.btran(&c2, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-9, "eta btran {u} vs refactor {v}");
        }
    }
}
