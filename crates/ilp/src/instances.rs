//! Deterministic benchmark/stress instance generators.
//!
//! Shared by `tests/stress_ilp.rs` and the `solver_criterion` bench so
//! the "972-constraint chain" both of them talk about is provably the
//! *same* instance family — tuning the generator in one place keeps the
//! stress suite and `BENCH_solver.json` measuring the same thing.

use crate::problem::{Problem, Sense};

/// A single-crossing chain partitioning ILP of `n` vertices with
/// pseudo-random (deterministic, xorshift-seeded) reducing bandwidths
/// and CPU costs, mirroring the structure `wishbone-core` emits:
/// `n − 1` precedence rows `f_u − f_v ≥ 0` (2 nonzeros each) plus one
/// dense CPU budget row — `n` constraints total.
pub fn chain_ilp(n: usize, budget: f64) -> Problem {
    let mut p = Problem::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let bw: Vec<f64> = (0..n)
        .map(|i| 1000.0 * 0.9f64.powi(i as i32) + next() * 10.0)
        .collect();
    let cpu: Vec<f64> = (0..n).map(|_| 0.002 + 0.01 * next()).collect();

    let vars: Vec<_> = (0..n)
        .map(|i| {
            // Objective = cut bandwidth expansion: out_bw - in_bw per vertex.
            let out = bw[i];
            let inb = if i == 0 { 0.0 } else { bw[i - 1] };
            let (lo, hi) = if i == 0 { (1.0, 1.0) } else { (0.0, 1.0) };
            p.add_var(lo, hi, out - inb, true)
        })
        .collect();
    for w in vars.windows(2) {
        p.add_constraint(&[(w[0], 1.0), (w[1], -1.0)], Sense::Ge, 0.0);
    }
    let cpu_row: Vec<_> = vars.iter().zip(&cpu).map(|(&v, &c)| (v, c)).collect();
    p.add_constraint(&cpu_row, Sense::Le, budget);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape_is_as_documented() {
        let p = chain_ilp(50, 1.0);
        assert_eq!(p.num_vars(), 50);
        assert_eq!(p.num_constraints(), 50);
        // First vertex (the source) is pinned to the node.
        assert_eq!(p.lower_bounds()[0], 1.0);
        assert_eq!(p.upper_bounds()[0], 1.0);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = chain_ilp(20, 0.5);
        let b = chain_ilp(20, 0.5);
        assert_eq!(a.lower_bounds(), b.lower_bounds());
        let ones = vec![1.0; 20];
        assert!((a.objective_value(&ones) - b.objective_value(&ones)).abs() < 1e-12);
    }
}
