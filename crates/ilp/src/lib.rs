//! # wishbone-ilp
//!
//! A self-contained linear-programming and integer-linear-programming
//! solver: two-phase primal simplex with bounded variables, plus branch and
//! bound. It plays the role of `lp_solve` in the Wishbone paper (§4.2.1):
//! "an off-the-shelf integer programming solver ... uses branch-and-bound to
//! solve integer-constrained problems ... and the Simplex algorithm to solve
//! linear programming problems."
//!
//! The solver is deterministic, pure Rust, `forbid(unsafe_code)`, and
//! instruments the branch-and-bound search with the discover-vs-prove
//! timeline that the paper's Figure 6 reports.
//!
//! Performance architecture (mirroring production MILP codes):
//!
//! * [`SimplexWorkspace`] — one tableau/factorization allocation reused
//!   by every branch-and-bound node; children re-enter **warm** from the
//!   parent search's last optimal basis via a bounded dual-simplex
//!   repair;
//! * two interchangeable simplex backends behind that workspace
//!   ([`SolverBackend`]): the dense tableau (small problems, and the
//!   oracle for the differential test suite) and a **sparse revised
//!   simplex** over an LU-factored basis with eta updates (`sparse.rs`,
//!   `lu.rs`, `revised.rs`) — `Auto` switches at
//!   [`SPARSE_AUTO_THRESHOLD`] constraints, which on the fig6
//!   972-constraint EEG instances is worth an order of magnitude;
//! * [`presolve`](mod@presolve) — bound propagation that proves infeasibility (or fixes
//!   implied-integral variables) before a single simplex iteration runs;
//! * best-first node selection, so the reported optimality gap tightens
//!   monotonically and limit-hit returns carry a meaningful bound.
//!
//! ```
//! use wishbone_ilp::{Problem, Sense, IlpOptions};
//!
//! // A miniature Wishbone partition problem: two operators in a chain,
//! // f=1 places an operator on the mote, f=0 on the server. The source
//! // edge carries 10 kb/s, the edge after op0 carries 6 kb/s, after op1
//! // 2 kb/s. Cut bandwidth = 10(1-f0) + 6(f0-f1) + 2 f1 when f0 >= f1.
//! let mut p = Problem::new();
//! let f0 = p.add_var(0.0, 1.0, -4.0, true); // d(net)/d(f0) = 6-10 = -4
//! let f1 = p.add_var(0.0, 1.0, -4.0, true); // d(net)/d(f1) = 2-6  = -4
//! p.add_constraint(&[(f0, 1.0), (f1, -1.0)], Sense::Ge, 0.0); // single cut
//! p.add_constraint(&[(f0, 3.0), (f1, 5.0)], Sense::Le, 4.0);  // CPU budget
//! let sol = p.solve_ilp(&IlpOptions::default()).unwrap();
//! // Budget 4 admits only op0 on the mote: net falls from 10 to 6 kb/s.
//! assert_eq!(sol.values, vec![1.0, 0.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod instances;
mod lu;
pub mod num;
pub mod presolve;
pub mod problem;
mod revised;
pub mod simplex;
mod sparse;
pub mod workspace;

pub use branch_bound::{
    solve_ilp, solve_ilp_in, Branching, IlpOptions, IlpSolution, IlpStats, PhaseTimes,
};
pub use num::is_exact_zero;
pub use presolve::{presolve, quick_infeasible, PresolveOutcome};
pub use problem::{Constraint, LpSolution, Problem, Sense, SolveError, VarId};
pub use simplex::{solve_lp, solve_lp_in, solve_lp_with_bounds};
pub use workspace::{SimplexWorkspace, SolverBackend, SPARSE_AUTO_THRESHOLD};

impl Problem {
    /// Solve the LP relaxation.
    pub fn solve_lp(&self) -> Result<LpSolution, SolveError> {
        simplex::solve_lp(self)
    }

    /// Solve to integer optimality (or within `opts` limits).
    pub fn solve_ilp(&self, opts: &IlpOptions) -> Result<IlpSolution, SolveError> {
        branch_bound::solve_ilp(self, opts)
    }
}
