//! Online profile accumulation and drift detection.
//!
//! A [`LiveProfile`] folds a stream of [`TraceEvent`]s into per-operator
//! CPU and per-edge size/selectivity estimates (EWMA + count). A
//! [`DriftDetector`] snapshots the expectations implied by the
//! [`GraphProfile`](wishbone_profile::GraphProfile) a standing cut was
//! solved against and flags operators/edges whose live estimate leaves a
//! configurable relative band — the signal that the cut should be
//! re-solved (warm, via the in-place rescale path).

use std::fmt;

use wishbone_dataflow::{EdgeId, OperatorId};
use wishbone_profile::{GraphProfile, Platform};

use crate::sink::{TraceEvent, TraceSink};

/// Streaming estimate of one operator's per-invocation CPU cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OperatorEstimate {
    /// Number of cost samples folded in.
    pub samples: u64,
    /// EWMA of the charged CPU time per invocation, seconds.
    pub ewma_cpu_s: f64,
    /// Sum of all charged CPU time, seconds.
    pub total_cpu_s: f64,
}

/// Streaming estimate of one edge's element size and delivery behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EdgeEstimate {
    /// Elements offered to the edge.
    pub samples: u64,
    /// EWMA of the marshalled element size, bytes.
    pub ewma_bytes: f64,
    /// Sum of marshalled bytes offered.
    pub total_bytes: u64,
    /// Elements that survived the channel.
    pub delivered: u64,
}

impl EdgeEstimate {
    /// Observed delivery ratio (1 when nothing was offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.samples == 0 {
            1.0
        } else {
            self.delivered as f64 / self.samples as f64
        }
    }
}

/// An online profile accumulated from a live event stream.
///
/// `LiveProfile` is itself a [`TraceSink`], so it can be handed straight
/// to a traced simulation; it also exposes [`observe`](Self::observe) /
/// [`fold`](Self::fold) for replaying a buffered
/// [`MemorySink`](crate::MemorySink).
///
/// Estimates are keyed by dataflow id and are platform-relative: the CPU
/// samples are whatever the emitting site's cost model charged. When
/// sites run different platforms, keep one `LiveProfile` per site (or
/// per platform class) so the EWMAs stay comparable to one expectation.
#[derive(Debug, Clone)]
pub struct LiveProfile {
    alpha: f64,
    ops: Vec<OperatorEstimate>,
    edges: Vec<EdgeEstimate>,
}

impl LiveProfile {
    /// A fresh profile. `alpha` is the EWMA weight of the newest sample
    /// (`0 < alpha <= 1`); 1 means "latest sample only", small values
    /// smooth harder and react slower.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        LiveProfile {
            alpha,
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The EWMA weight this profile was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fold one event in. Only [`TraceEvent::OperatorCost`] and
    /// [`TraceEvent::EdgeElement`] carry samples; other events are
    /// ignored.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::OperatorCost { op, cpu_s, .. } => {
                if self.ops.len() <= op.0 {
                    self.ops.resize(op.0 + 1, OperatorEstimate::default());
                }
                let e = &mut self.ops[op.0];
                e.ewma_cpu_s = if e.samples == 0 {
                    *cpu_s
                } else {
                    self.alpha * cpu_s + (1.0 - self.alpha) * e.ewma_cpu_s
                };
                e.samples += 1;
                e.total_cpu_s += cpu_s;
            }
            TraceEvent::EdgeElement {
                edge,
                wire_bytes,
                delivered,
                ..
            } => {
                if self.edges.len() <= edge.0 {
                    self.edges.resize(edge.0 + 1, EdgeEstimate::default());
                }
                let e = &mut self.edges[edge.0];
                let bytes = *wire_bytes as f64;
                e.ewma_bytes = if e.samples == 0 {
                    bytes
                } else {
                    self.alpha * bytes + (1.0 - self.alpha) * e.ewma_bytes
                };
                e.samples += 1;
                e.total_bytes += *wire_bytes as u64;
                e.delivered += u64::from(*delivered);
            }
            _ => {}
        }
    }

    /// Replay a batch of events (e.g. a drained
    /// [`MemorySink`](crate::MemorySink)).
    pub fn fold<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for e in events {
            self.observe(e);
        }
    }

    /// The estimate for one operator, if any sample arrived.
    pub fn operator(&self, op: OperatorId) -> Option<&OperatorEstimate> {
        self.ops.get(op.0).filter(|e| e.samples > 0)
    }

    /// The estimate for one edge, if any element was offered.
    pub fn edge(&self, edge: EdgeId) -> Option<&EdgeEstimate> {
        self.edges.get(edge.0).filter(|e| e.samples > 0)
    }
}

impl TraceSink for LiveProfile {
    fn record(&mut self, event: TraceEvent) {
        self.observe(&event);
    }
}

/// Sensitivity of a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative band an estimate may leave before it is flagged: a
    /// ratio outside `[1/(1+rel_band), 1+rel_band]` is drift. The
    /// default (0.5) flags a 1.5× slowdown or a 33% speedup.
    pub rel_band: f64,
    /// Minimum samples before an estimate is trusted at all (EWMAs of a
    /// handful of samples are still mostly the first sample).
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            rel_band: 0.5,
            min_samples: 8,
        }
    }
}

/// One operator whose live CPU estimate left the band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorDrift {
    /// The operator.
    pub op: OperatorId,
    /// Per-invocation cost the cut was priced on, seconds.
    pub expected_s: f64,
    /// Live EWMA estimate, seconds.
    pub observed_s: f64,
    /// `observed / expected` (> 1 means the operator runs hot).
    pub ratio: f64,
}

/// One edge whose live element-size estimate left the band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDrift {
    /// The edge.
    pub edge: EdgeId,
    /// Mean element size the cut was priced on, bytes.
    pub expected_bytes: f64,
    /// Live EWMA estimate, bytes.
    pub observed_bytes: f64,
    /// `observed / expected` (> 1 means elements got bigger).
    pub ratio: f64,
}

/// Everything a [`DriftDetector`] flagged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftReport {
    /// Operators running outside the band, hottest first.
    pub operators: Vec<OperatorDrift>,
    /// Edges whose element sizes left the band, largest ratio first.
    pub edges: Vec<EdgeDrift>,
}

impl DriftReport {
    /// Whether nothing drifted.
    pub fn is_clean(&self) -> bool {
        self.operators.is_empty() && self.edges.is_empty()
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "no drift");
        }
        let mut first = true;
        for od in &self.operators {
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(
                f,
                "op {} drifted {:.2}x ({:.3e}s -> {:.3e}s per invocation)",
                od.op.0, od.ratio, od.expected_s, od.observed_s
            )?;
        }
        for ed in &self.edges {
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(
                f,
                "edge {} drifted {:.2}x ({:.1}B -> {:.1}B per element)",
                ed.edge.0, ed.ratio, ed.expected_bytes, ed.observed_bytes
            )?;
        }
        Ok(())
    }
}

/// Compares a [`LiveProfile`] against the expectations of the
/// [`GraphProfile`] a standing cut was solved against.
///
/// The expectations are snapshotted at construction: per-operator
/// seconds-per-invocation on `platform` (optionally scaled by a known
/// runtime CPU overhead factor, see
/// [`with_cpu_overhead`](Self::with_cpu_overhead)) and per-edge mean
/// element bytes.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    expected_op_s: Vec<f64>,
    expected_edge_bytes: Vec<f64>,
}

impl DriftDetector {
    /// Snapshot expectations from `profile` as priced on `platform`.
    pub fn new(profile: &GraphProfile, platform: &Platform, cfg: DriftConfig) -> Self {
        assert!(cfg.rel_band > 0.0, "drift band must be positive");
        let expected_op_s = (0..profile.operator_count())
            .map(|i| profile.seconds_per_invocation(OperatorId(i), platform))
            .collect();
        let expected_edge_bytes = (0..profile.edge_count())
            .map(|i| profile.mean_element_bytes(EdgeId(i)))
            .collect();
        DriftDetector {
            cfg,
            expected_op_s,
            expected_edge_bytes,
        }
    }

    /// Scale every per-operator expectation by `factor`. The runtime
    /// charges task-model and OS overheads on top of the raw profiled
    /// cycle cost; when live samples come from the simulator, pass the
    /// platform's known overhead factor here so the band measures
    /// genuine drift rather than the constant bookkeeping markup.
    pub fn with_cpu_overhead(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        for e in &mut self.expected_op_s {
            *e *= factor;
        }
        self
    }

    /// The configured band.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Compare `live` against the snapshotted expectations. Estimates
    /// with fewer than [`DriftConfig::min_samples`] samples, and
    /// operators/edges the profile priced at zero (never invoked on the
    /// profiling trace), are skipped.
    pub fn detect(&self, live: &LiveProfile) -> DriftReport {
        let hi = 1.0 + self.cfg.rel_band;
        let lo = 1.0 / hi;
        let mut report = DriftReport::default();
        for (i, &expected) in self.expected_op_s.iter().enumerate() {
            if expected <= 0.0 {
                continue;
            }
            let Some(est) = live.operator(OperatorId(i)) else {
                continue;
            };
            if est.samples < self.cfg.min_samples {
                continue;
            }
            let ratio = est.ewma_cpu_s / expected;
            if ratio > hi || ratio < lo {
                report.operators.push(OperatorDrift {
                    op: OperatorId(i),
                    expected_s: expected,
                    observed_s: est.ewma_cpu_s,
                    ratio,
                });
            }
        }
        for (i, &expected) in self.expected_edge_bytes.iter().enumerate() {
            if expected <= 0.0 {
                continue;
            }
            let Some(est) = live.edge(EdgeId(i)) else {
                continue;
            };
            if est.samples < self.cfg.min_samples {
                continue;
            }
            let ratio = est.ewma_bytes / expected;
            if ratio > hi || ratio < lo {
                report.edges.push(EdgeDrift {
                    edge: EdgeId(i),
                    expected_bytes: expected,
                    observed_bytes: est.ewma_bytes,
                    ratio,
                });
            }
        }
        report.operators.sort_by(|a, b| {
            b.ratio
                .partial_cmp(&a.ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        report.edges.sort_by(|a, b| {
            b.ratio
                .partial_cmp(&a.ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        report
    }
}
