//! # wishbone-trace
//!
//! Streaming observability for Wishbone deployments: structured
//! [`TraceEvent`]s emitted by the runtime simulators behind a
//! zero-cost-when-off [`TraceSink`], an online [`LiveProfile`]
//! accumulator with a [`DriftDetector`] that compares observed behavior
//! against the [`GraphProfile`](wishbone_profile::GraphProfile) a
//! standing cut was solved against, and snailtrail-style critical-path
//! attribution ([`AttributionReport`]) that names the site/link/operator
//! responsible for lost goodput.
//!
//! The off path is [`NullSink::NULL`]: `enabled()` is `false`, every
//! `record` is a no-op, and instrumented code gates event construction on
//! `enabled()` so a traced run with the null sink is byte-identical to —
//! and within measurement noise of — an untraced run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod live;
mod sink;

pub use attribution::{AttributionReport, Blame, LossCause};
pub use live::{
    DriftConfig, DriftDetector, DriftReport, EdgeDrift, EdgeEstimate, LiveProfile, OperatorDrift,
    OperatorEstimate,
};
pub use sink::{MemorySink, NullSink, TraceEvent, TraceSink};
