//! Trace events and the sink trait the runtime emits them through.

use wishbone_dataflow::{EdgeId, OperatorId};

/// One structured telemetry record emitted by a traced simulation.
///
/// Events reference sites by their index in the simulated
/// topology (`TreeTopology` site numbering: 0 is the server root) and
/// operators/edges by their dataflow ids, so a consumer can join them
/// back against the partition and the profile the cut was solved from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One work-function invocation finished at a site: the CPU-seconds
    /// the platform's cost model charged for it (task-model and OS
    /// overheads included — this is what the site's busy clock advanced
    /// by, not the raw cycle count).
    OperatorCost {
        /// Site the operator ran on.
        site: usize,
        /// The operator.
        op: OperatorId,
        /// Charged CPU time, seconds.
        cpu_s: f64,
    },
    /// One element offered to the uplink out of `site` towards its
    /// parent, and whether it survived the channel (contention losses and
    /// lossy-uplink fades both clear `delivered`; drops that happen
    /// *after* the air — reboot outages, relay saturation — are reported
    /// as [`TraceEvent::Outage`] / absorbed into the site ledgers
    /// instead).
    EdgeElement {
        /// Child endpoint of the tree edge (the sender).
        site: usize,
        /// Dataflow edge the element crossed.
        edge: EdgeId,
        /// Marshalled payload size, bytes.
        wire_bytes: usize,
        /// Whether the element made it across the air.
        delivered: bool,
    },
    /// Aggregate channel view of one tree edge after its pass completed.
    EdgeSummary {
        /// Child endpoint of the tree edge.
        site: usize,
        /// Application payload offered to the channel, bytes/second.
        offered_bytes_per_sec: f64,
        /// Packet delivery ratio the shared channel reports.
        delivery_ratio: f64,
    },
    /// Final busy fraction of one site (CPU-seconds consumed over
    /// device-count × duration, saturating at 1).
    SiteBusy {
        /// The site.
        site: usize,
        /// Busy fraction in `[0, 1]`.
        busy_fraction: f64,
    },
    /// One failure-outage window and what it cost.
    Outage {
        /// Site the failure was attached to.
        site: usize,
        /// Window start, seconds.
        start_s: f64,
        /// Window end, seconds.
        end_s: f64,
        /// Elements dropped inside the window.
        dropped: u64,
        /// Elements that still got through (e.g. a fade that only
        /// sometimes loses).
        delivered: u64,
    },
}

/// Receiver for [`TraceEvent`]s.
///
/// Instrumented code MUST gate event construction on [`enabled`]
/// (`if sink.enabled() { sink.record(...) }`) so the off path —
/// [`NullSink`] — costs nothing: the branch is monomorphized to a
/// constant `false` and the event is never built.
///
/// [`enabled`]: TraceSink::enabled
pub trait TraceSink {
    /// Whether this sink wants events at all. Defaults to `true`;
    /// [`NullSink`] overrides it to a constant `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event. Only called when [`enabled`](TraceSink::enabled)
    /// returned `true`.
    fn record(&mut self, event: TraceEvent);
}

/// The zero-cost off path: `enabled()` is a constant `false` and
/// `record` is unreachable in practice. Untraced simulation entry points
/// delegate to the traced ones with a `NullSink`, which the optimizer
/// erases entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl NullSink {
    /// The canonical off-path value (the `TraceSink` "NULL" sink). A
    /// bare trait path can't name an associated const without a concrete
    /// `Self`, so the constant lives on the unit struct.
    pub const NULL: NullSink = NullSink;
}

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A sink that buffers every event in memory, for offline analysis
/// (attribution, folding into a [`LiveProfile`](crate::LiveProfile),
/// test assertions).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Every recorded event, in emission order.
    pub events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}
