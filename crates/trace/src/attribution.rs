//! Critical-path attribution: ranked blame for lost goodput.
//!
//! The runtime walks a finished deployment trace (the per-route hop
//! ledgers and per-site loss counters of a `TreeDeploymentReport`) and
//! produces an [`AttributionReport`]: every loss bucketed by cause and
//! site, ranked by how much goodput it cost, so a collapse names the
//! site/link/operator responsible instead of leaving a raw ratio to
//! eyeball.

use std::fmt;

/// Why elements failed to reach the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossCause {
    /// A leaf's input buffer overran: the device could not keep up with
    /// its own sources, so events were never processed at all (counted
    /// in *events*, not elements).
    InputOverrun,
    /// A relay site's CPU saturated and shed elements.
    Saturation,
    /// Elements lost on the air: shared-channel contention or a
    /// lossy-uplink fade.
    ChannelLoss,
    /// A failure outage swallowed them: a gateway reboot window or a
    /// mote battery death.
    Outage,
}

impl fmt::Display for LossCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossCause::InputOverrun => write!(f, "input overrun"),
            LossCause::Saturation => write!(f, "CPU saturation"),
            LossCause::ChannelLoss => write!(f, "channel loss"),
            LossCause::Outage => write!(f, "outage"),
        }
    }
}

/// One (cause, site) bucket of lost goodput.
#[derive(Debug, Clone, PartialEq)]
pub struct Blame {
    /// What happened.
    pub cause: LossCause,
    /// The site responsible (for [`LossCause::ChannelLoss`] the child
    /// endpoint of the lossy uplink).
    pub site: usize,
    /// Human-readable name of the blamed site/link.
    pub label: String,
    /// How many elements (events for [`LossCause::InputOverrun`]) were
    /// lost here.
    pub lost: u64,
    /// This bucket's share of all attributed losses, in `[0, 1]`.
    pub share: f64,
}

impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} lost to {} ({:.1}% of losses)",
            self.label,
            self.lost,
            self.cause,
            self.share * 100.0
        )
    }
}

/// Ranked attribution of every loss in a finished deployment trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributionReport {
    /// Non-empty blame buckets, biggest loss first.
    pub blames: Vec<Blame>,
    /// Sum of all attributed losses.
    pub total_lost: u64,
    /// End-to-end goodput ratio of the run the blame explains.
    pub goodput_ratio: f64,
}

impl AttributionReport {
    /// Build a report from raw buckets: computes shares, drops empty
    /// buckets, ranks by loss.
    pub fn from_blames(mut blames: Vec<Blame>, goodput_ratio: f64) -> Self {
        blames.retain(|b| b.lost > 0);
        let total_lost: u64 = blames.iter().map(|b| b.lost).sum();
        for b in &mut blames {
            b.share = if total_lost == 0 {
                0.0
            } else {
                b.lost as f64 / total_lost as f64
            };
        }
        blames.sort_by(|a, b| b.lost.cmp(&a.lost).then(a.site.cmp(&b.site)));
        AttributionReport {
            blames,
            total_lost,
            goodput_ratio,
        }
    }

    /// The dominant loss, if anything was lost at all.
    pub fn top(&self) -> Option<&Blame> {
        self.blames.first()
    }

    /// Sum of losses attributed to one cause across all sites.
    pub fn lost_to(&self, cause: LossCause) -> u64 {
        self.blames
            .iter()
            .filter(|b| b.cause == cause)
            .map(|b| b.lost)
            .sum()
    }

    /// Multi-line ranked rendering (what the examples print).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for AttributionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "goodput {:.1}%: {} elements lost",
            self.goodput_ratio * 100.0,
            self.total_lost
        )?;
        if self.blames.is_empty() {
            write!(f, " (nothing to attribute)")?;
        }
        for b in &self.blames {
            write!(f, "\n  {b}")?;
        }
        Ok(())
    }
}
