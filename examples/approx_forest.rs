//! Exact vs approximate partitioning on a near-cliff forest.
//!
//! The instance is the calibrated tight forest from
//! `tests/approx_nearcliff.rs`: two 4-mote wards of 4-channel EEG caps
//! behind asymmetric gateways (gw-a's backhaul starved to 500 B/s),
//! driven at rates approaching its feasibility cliff (x3.1614). This is
//! the regime where exact branch-and-bound used to *starve* — hundreds
//! of nodes before the first integer point — and where the PR-8
//! multilevel heuristic earns its keep from both ends:
//!
//! * the default (exact) engine seeds its incumbent from the multilevel
//!   cut (`IlpStats::seeded`), so the anytime answer exists from
//!   millisecond one;
//! * `DeploymentConfig::approx()` skips branch-and-bound entirely and
//!   reports a certified optimality gap from the root LP bound.
//!
//! Run with: `cargo run --release --example approx_forest`

use wishbone::prelude::*;

fn main() {
    let mut app = build_eeg_app(EegParams {
        n_channels: 4,
        ..Default::default()
    });
    let traces = app.traces(4, 1..3, 7);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    let phone = Platform::iphone();
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    let gw_a = dep.attach(
        root,
        Site::new("gw-a", &phone),
        LinkSpec {
            beta: 1.0,
            net_budget: 500.0, // metered backhaul: the binding row
        },
    );
    let gw_b = dep.attach(
        root,
        Site::new("gw-b", &phone),
        LinkSpec {
            beta: 1.0,
            net_budget: 400_000.0,
        },
    );
    let uplink = LinkSpec {
        beta: 1.0,
        net_budget: 4.0 * mote.radio.goodput_bytes_per_sec,
    };
    dep.attach(gw_a, Site::new("ward-a", &mote).with_count(4), uplink);
    dep.attach(gw_b, Site::new("ward-b", &mote).with_count(4), uplink);

    let mut exact = PreparedDeployment::new(&app.graph, &prof, &dep, &DeploymentConfig::default())
        .expect("pins ok");
    let mut approx = PreparedDeployment::new(
        &app.graph,
        &prof,
        &dep,
        &DeploymentConfig::default().approx(),
    )
    .expect("pins ok");

    println!("rate      exact obj   (seeded, first inc)   approx obj  certified gap");
    for rate in [1.0, 2.0, 3.0, 3.15] {
        let e = exact.solve_at(rate).expect("below the cliff");
        let a = approx.solve_at(rate).expect("below the cliff");
        let gap = a.certified_gap.expect("approx carries a certificate");
        println!(
            "x{rate:<7} {:>11.2}   ({}, {:?})   {:>10.2}  {:.4}",
            e.objective,
            e.ilp_stats.seeded,
            e.ilp_stats.incumbents.first().map(|i| i.0),
            a.objective,
            gap
        );
        assert!(
            a.objective >= e.objective - 1e-9 * (1.0 + e.objective.abs()),
            "heuristic beat the exact optimum"
        );
        assert!(
            (a.objective - e.objective) / a.objective.abs().max(f64::EPSILON) <= gap + 1e-9,
            "certificate violated: approx {} exact {} gap {gap}",
            a.objective,
            e.objective
        );
    }

    // Past the cliff both engines agree there is nothing to place.
    match exact.solve_at(4.0) {
        Err(e) => println!("x4.0 (past the cliff): exact engine says {e}"),
        Ok(p) => panic!("x4.0 should be infeasible, got obj {}", p.objective),
    }
    match approx.solve_at(4.0) {
        Err(e) => println!("x4.0 (past the cliff): approx engine says {e}"),
        Ok(p) => panic!("x4.0 should be infeasible, got obj {}", p.objective),
    }
}
