//! Speech detection across the paper's platform zoo (§7.2): for each
//! platform, find the maximum sustainable data rate and the optimal
//! cutpoint via the §4.3 binary search.
//!
//! Run with: `cargo run --release --example speech_detection`

use wishbone::prelude::*;

fn main() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(120, 7);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");

    println!("platform survey: max sustainable rate (x 8 kHz) and optimal cut\n");
    println!(
        "{:<10} {:>12} {:>10} {:>10}  cut after",
        "platform", "max rate", "node ops", "cpu %"
    );

    for platform in Platform::fig5b_platforms() {
        let cfg = PartitionConfig::for_platform(&platform);
        match max_sustainable_rate(&app.graph, &prof, &platform, &cfg, 32.0, 0.01) {
            Ok(Some(r)) => {
                let last_stage = app
                    .stages
                    .iter()
                    .rev()
                    .find(|(_, id)| r.partition.node_ops.contains(id))
                    .map(|&(n, _)| n)
                    .unwrap_or("nothing");
                println!(
                    "{:<10} {:>12.3} {:>10} {:>9.1}%  {}",
                    platform.name,
                    r.rate,
                    r.partition.node_op_count(),
                    r.partition.predicted_cpu * 100.0,
                    last_stage
                );
            }
            Ok(None) => println!("{:<10} {:>12}", platform.name, "infeasible"),
            Err(e) => println!("{:<10} error: {e}", platform.name),
        }
    }

    // The Meraki story (§7.3): plenty of radio, modest CPU — optimal cut
    // is to ship raw data.
    let meraki = Platform::meraki_mini();
    let cfg = PartitionConfig::for_platform(&meraki);
    let part = partition(&app.graph, &prof, &meraki, &cfg).expect("meraki fits at full rate");
    println!("\nMeraki solver: {}", report_stats(&part.ilp_stats));
    let node_stage_count = part.node_op_count();
    println!(
        "\nMeraki Mini at full rate: {} node op(s) -> {}",
        node_stage_count,
        if node_stage_count == 1 {
            "cut point 1: send the raw data directly back to the server (matches §7.3)"
        } else {
            "in-network processing selected"
        }
    );
}
