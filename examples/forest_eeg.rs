//! A genuinely branching deployment: two wards of EEG caps, two
//! gateways, one server — the topology the binary, mixed, and chain
//! partitioners cannot express.
//!
//! Each ward is 20 caps of 11-channel EEG montages on telos-class motes,
//! docked to one ward gateway; the gateways share nothing but the clinic
//! server. Gateway A's backhaul is a metered 100 B/s 2G link, gateway
//! B's a roomy WiFi one. The gateway's uplink row aggregates all 20
//! caps' streams — the count-weighted coupling `partition_mixed` cannot
//! see — so the starved backhaul constrains *only* subtree A. Driven
//! well past A's sustainable rate, `simulate_deployment_tree` shows
//! goodput collapsing on A's subtree while B keeps streaming.
//!
//! Run with: `cargo run --release --example forest_eeg`

use wishbone::dataflow::dot::{deployment_to_dot, DeploymentDotOptions, DeploymentInstance};
use wishbone::prelude::*;

fn main() {
    let caps_per_ward = 20;
    let mut app = build_eeg_app(EegParams {
        n_channels: 11,
        ..Default::default()
    });
    println!(
        "EEG cap: {} channels, {} operators, {} edges (x{caps_per_ward} caps x2 wards)",
        app.n_channels,
        app.graph.operator_count(),
        app.graph.edge_count()
    );
    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    let relay = Platform::iphone();
    let starved_backhaul = 100.0; // bytes/second — gateway A's metered 2G link
    let roomy_backhaul = 400_000.0; // gateway B's WiFi

    // server <- {gw-a <- cap-a, gw-b <- cap-b}
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    let gw_a = dep.attach(
        root,
        Site::new("gw-a", &relay),
        LinkSpec {
            beta: 1.0,
            net_budget: starved_backhaul,
        },
    );
    let gw_b = dep.attach(
        root,
        Site::new("gw-b", &relay),
        LinkSpec {
            beta: 1.0,
            net_budget: roomy_backhaul,
        },
    );
    // Caps dock to their ward gateway over a short-range WiFi-class
    // link (single-packet elements, 1% loss). It is roomy enough that
    // each gateway's WAN backhaul is the scarce resource, and modest
    // enough that the joint optimum stays below the mote-CPU cliff.
    let ward_link_capacity = 1_200.0;
    let cap_uplink = LinkSpec {
        beta: 1.0,
        net_budget: ward_link_capacity,
    };
    let cap_a = dep.attach(
        gw_a,
        Site::new("ward-a", &mote).with_count(caps_per_ward),
        cap_uplink,
    );
    let cap_b = dep.attach(
        gw_b,
        Site::new("ward-b", &mote).with_count(caps_per_ward),
        cap_uplink,
    );

    let mut cfg = DeploymentConfig::default();
    // Budget-limited mid-cascade cuts are the knapsack-hard case: accept
    // the near-cliff integrality gap and give each probe a real (but
    // bounded) budget to find an incumbent.
    cfg.ilp.rel_gap = 0.025;
    cfg.ilp.time_limit = Some(std::time::Duration::from_secs(15));

    let prep = PreparedDeployment::new(&app.graph, &prof, &dep, &cfg).expect("pins ok");
    let (vars, cons) = prep.problem_size();
    println!(
        "forest ILP: {} vars x {} constraints across 2 leaf classes, backend {:?}",
        vars,
        cons,
        prep.solver_backend()
    );
    if std::env::args().any(|a| a == "--audit") {
        let report = prep.audit();
        println!("audit: {}", report.summary());
        assert!(!report.has_errors(), "static audit found errors:\n{report}");
    }
    drop(prep);

    // §4.3 on the whole forest: the starved backhaul caps the deployment.
    let r = max_sustainable_rate_deployment(&app.graph, &prof, &dep, &cfg, 8.0, 0.02)
        .expect("no solver error")
        .expect("feasible at low rates");
    println!(
        "\nmax sustainable rate x{:.3} ({} probes, {} encode)",
        r.rate, r.evaluations, r.encodes
    );
    println!("solver: {}", report_stats(&r.partition.ilp_stats));
    for (leaf, gw, name) in [(cap_a, gw_a, "ward-a"), (cap_b, gw_b, "ward-b")] {
        let l = r.partition.leaf(leaf).unwrap();
        println!(
            "  {name}: {:>3} ops on each cap, {:>3} at its gateway, {:>2} at the server; \
             gateway backhaul {:.1} B/s aggregate over {caps_per_ward} caps",
            l.site_ops[0].len(),
            l.site_ops[1].len(),
            l.site_ops[2].len(),
            r.partition.link_net[gw.0]
        );
    }
    let a_net = r.partition.link_net[gw_a.0];
    assert!(
        a_net <= starved_backhaul + 1e-9,
        "gw-a backhaul {a_net} must fit its {starved_backhaul} B/s budget"
    );

    // What would the forest sustain if A's backhaul were as roomy as
    // B's? (Uplinks are fixed at attach time, so rebuild the forest.)
    let roomy_dep = {
        let mut d = Deployment::new(Site::server("server", &Platform::server()));
        let root = d.root();
        let roomy_uplink = LinkSpec {
            beta: 1.0,
            net_budget: roomy_backhaul,
        };
        let ga = d.attach(root, Site::new("gw-a", &relay), roomy_uplink);
        let gb = d.attach(root, Site::new("gw-b", &relay), roomy_uplink);
        d.attach(
            ga,
            Site::new("ward-a", &mote).with_count(caps_per_ward),
            cap_uplink,
        );
        d.attach(
            gb,
            Site::new("ward-b", &mote).with_count(caps_per_ward),
            cap_uplink,
        );
        d
    };
    let roomy = max_sustainable_rate_deployment(&app.graph, &prof, &roomy_dep, &cfg, 8.0, 0.02)
        .expect("no solver error")
        .expect("feasible");
    println!(
        "\nwith a roomy gw-a backhaul the same forest sustains x{:.3} \
         ({:.1}x more) — the starved uplink is the binding constraint",
        roomy.rate,
        roomy.rate / r.rate
    );
    assert!(roomy.rate > r.rate, "starved backhaul must bind");

    // Ground truth: drive the roomy placement far past the starved
    // forest's sustainable rate over the *real* (starved) channels. Only
    // A's subtree may collapse.
    let sim_rate = (9.0 * r.rate).min(roomy.rate);
    let topo = TreeTopology {
        parent: vec![None, Some(0), Some(0), Some(1), Some(2)],
        platforms: vec![
            Platform::server(),
            relay.clone(),
            relay.clone(),
            mote.clone(),
            mote.clone(),
        ],
        counts: vec![1, 1, 1, caps_per_ward, caps_per_ward],
        uplink: vec![
            None,
            Some(ChannelParams::wifi(starved_backhaul)),
            Some(ChannelParams::wifi(roomy_backhaul)),
            Some(ChannelParams::wifi(ward_link_capacity)),
            Some(ChannelParams::wifi(ward_link_capacity)),
        ],
    };
    let feeds: Vec<SourceFeed> = app
        .sources
        .iter()
        .zip(&traces)
        .map(|(&src, t)| SourceFeed {
            source: src,
            trace: t.elements.clone(),
            rate_hz: t.rate_hz,
        })
        .collect();
    let routes = [
        LeafRoute {
            path: vec![3, 1, 0],
            site_ops: roomy.partition.leaf(cap_a).unwrap().site_ops.clone(),
            feeds: feeds.clone(),
        },
        LeafRoute {
            path: vec![4, 2, 0],
            site_ops: roomy.partition.leaf(cap_b).unwrap().site_ops.clone(),
            feeds,
        },
    ];
    let sim_cfg = SimulationConfig {
        duration_s: 20.0,
        rate_multiplier: sim_rate,
        ..SimulationConfig::motes(1, 7)
    };
    let sim = simulate_deployment_tree(&app.graph, &topo, &routes, &sim_cfg);
    println!("\ndriving both subtrees at x{sim_rate:.3} over the real channels:");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "subtree", "input %", "gw uplink %", "goodput %", "gw cpu %"
    );
    for (i, name) in ["ward-a", "ward-b"].iter().enumerate() {
        let l = &sim.leaves[i];
        println!(
            "{:>8} {:>9.1}% {:>11.1}% {:>11.1}% {:>9.1}%",
            name,
            l.input_processed_ratio() * 100.0,
            l.hop_delivery_ratio(1) * 100.0,
            l.goodput_ratio() * 100.0,
            sim.site_cpu_utilization[i + 1] * 100.0
        );
    }
    println!("sim: {}", report_deployment_stats(&sim, &topo));
    let attr = attribute_tree(&sim, &topo);
    println!("\nattribution: {attr}");
    let (a, b) = (&sim.leaves[0], &sim.leaves[1]);
    // A hard gate, not an assert: CI smoke runs this example and must
    // fail on a regression even under panic handlers or `panic=abort`
    // quirks — exit non-zero explicitly, naming the blamed site/link.
    if !(a.goodput_ratio() < 0.5 * b.goodput_ratio() && b.goodput_ratio() > 0.6) {
        let blamed = attr
            .top()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "no losses attributed".into());
        eprintln!(
            "FAIL: goodput must collapse only on the saturated gateway's subtree \
             (a {:.2} vs b {:.2}); dominant blame: {blamed}",
            a.goodput_ratio(),
            b.goodput_ratio()
        );
        std::process::exit(1);
    }
    println!(
        "\ngw-a saturates (its uplink sheds {:.0}% of subtree A's stream) while \
         gw-b has headroom — per-gateway budgets, not one shared pool",
        (1.0 - a.hop_delivery_ratio(1)) * 100.0
    );

    // Replay the identical run under a seeded failure plan: ward B's
    // gateway reboots mid-experiment and its ward link fades for the
    // first half. Outages are accounted per failure window.
    let plan = FailurePlan {
        failures: vec![
            Failure::GatewayReboot {
                site: 2,
                start_s: 8.0,
                end_s: 12.0,
            },
            Failure::LossyUplink {
                site: 4,
                start_s: 0.0,
                end_s: 10.0,
                loss_prob: 0.25,
            },
        ],
        seed: 1,
    };
    let failed =
        simulate_deployment_tree_with_failures(&app.graph, &topo, &routes, &sim_cfg, &plan);
    println!("\nsame run under failures (gw-b reboot 8-12s, ward-b fade 0-10s @25%):");
    for (f, o) in plan.failures.iter().zip(&failed.outages) {
        println!(
            "  {f:?}: {} elements dropped, {} delivered outside/through the window [{:.1}s, {:.1}s)",
            o.elements_dropped, o.elements_delivered, o.window.0, o.window.1
        );
    }
    println!("sim: {}", report_deployment_stats(&failed, &topo));
    let fattr = attribute_tree(&failed, &topo);
    println!("attribution under failures: {fattr}");
    let fb = &failed.leaves[1];
    println!(
        "ward-b goodput under failures: {:.1}% (was {:.1}%)",
        fb.goodput_ratio() * 100.0,
        b.goodput_ratio() * 100.0
    );
    if fb.goodput_ratio() >= b.goodput_ratio() {
        let blamed = fattr
            .top()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "no losses attributed".into());
        eprintln!(
            "FAIL: failure windows must cost ward B goodput ({:.3} vs {:.3}); \
             dominant blame: {blamed}",
            fb.goodput_ratio(),
            b.goodput_ratio()
        );
        std::process::exit(1);
    }

    // The deployment visualization: one cluster per site; cap-a's and
    // cap-b's pipelines meet only in the server cluster.
    let part = &r.partition;
    let mut instances = Vec::new();
    for (leaf, label) in [(cap_a, "ward-a"), (cap_b, "ward-b")] {
        let l = part.leaf(leaf).unwrap();
        let mut sites = Vec::new();
        for (pos, ops) in l.site_ops.iter().enumerate() {
            sites.extend(ops.iter().map(|&op| (op, l.path[pos].0)));
        }
        let mut cut_bandwidth = Vec::new();
        for (b, cut) in l.link_cut_edges.iter().enumerate() {
            let platform = &dep.site(l.path[b]).platform;
            for &e in cut {
                let bw = prof.edge_on_air_bandwidth(e, platform) * r.rate;
                if !cut_bandwidth.iter().any(|&(e2, _)| e2 == e) {
                    cut_bandwidth.push((e, bw));
                }
            }
        }
        instances.push(DeploymentInstance {
            label: label.to_string(),
            sites,
            cut_bandwidth,
        });
    }
    let dot = deployment_to_dot(
        &app.graph,
        &DeploymentDotOptions {
            label: format!(
                "2 wards x {caps_per_ward} caps x 11-channel EEG, asymmetric backhauls (rate x{:.2})",
                r.rate
            ),
            site_labels: dep
                .site_ids()
                .map(|s| {
                    let site = dep.site(s);
                    match dep.uplink(s) {
                        Some(l) => format!("{} (uplink {:.0} B/s)", site.name, l.net_budget),
                        None => site.name.clone(),
                    }
                })
                .collect(),
            instances,
        },
    );
    std::fs::write("forest_eeg.dot", &dot).ok();
    println!("\nwrote forest_eeg.dot ({} bytes)", dot.len());
}
