//! 3-tier partitioning of the full 22-channel EEG application: telos-class
//! motes on the scalp, a phone in the pocket, a server in the clinic.
//!
//! The k-way monotone-cut ILP assigns every operator a tier along the
//! chain, jointly optimizing both cut frontiers: the mote's CC2420 radio
//! budget (3 kB/s shared) and the phone's WiFi uplink (400 kB/s), with
//! per-tier CPU budgets on each platform's own cycle model. The sweep
//! shows work sliding off the motes and onto the phone as the input rate
//! grows — the §9 hierarchy the binary partitioner cannot express.
//!
//! Run with: `cargo run --release --example tiered_eeg`

use std::time::Instant;

use wishbone::dataflow::dot::{to_dot, DotOptions};
use wishbone::ilp::SolverBackend;
use wishbone::prelude::*;

fn main() {
    let mut app = build_eeg_app(EegParams::default());
    println!(
        "EEG app: {} channels, {} operators, {} edges",
        app.n_channels,
        app.graph.operator_count(),
        app.graph.edge_count()
    );

    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");

    let telos = Platform::tmote_sky();
    let phone = Platform::iphone();
    let server = Platform::server();
    let chain = [telos.clone(), phone.clone(), server.clone()];
    let mut cfg = MultiTierConfig::for_chain(&chain);
    // Near the infeasibility cliff the CPU knapsack has a genuine ~2%
    // integrality gap; accept it instead of enumerating it closed.
    cfg.ilp.rel_gap = 0.025;
    cfg.ilp.time_limit = Some(std::time::Duration::from_secs(5));

    let mut prep = PreparedMultiTier::new(&app.graph, &prof, &cfg).expect("pin analysis succeeds");
    let (vars, cons) = prep.problem_size();
    println!(
        "3-tier ILP: {} vars x {} constraints (merged {} -> {} vertices), backend {:?}",
        vars,
        cons,
        app.graph.operator_count(),
        vars / 2,
        prep.solver_backend()
    );
    assert_eq!(
        prep.solver_backend(),
        SolverBackend::Sparse,
        "Auto must pick the sparse revised simplex at this size"
    );
    if std::env::args().any(|a| a == "--audit") {
        let report = prep.audit();
        println!("audit: {}", report.summary());
        assert!(!report.has_errors(), "static audit found errors:\n{report}");
    }

    println!(
        "\n{:>6} {:>6} {:>6} {:>7} {:>12} {:>12} {:>9}",
        "rate", "mote", "phone", "server", "link0 B/s", "link1 B/s", "solve"
    );
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let t0 = Instant::now();
        match prep.solve_at(mult) {
            Ok(part) => {
                assert!(
                    part.ilp_stats.final_gap <= cfg.ilp.rel_gap + 1e-9,
                    "probe x{mult} outside the configured gap: {}",
                    part.ilp_stats.final_gap
                );
                println!(
                    "{:>6.2} {:>6} {:>6} {:>7} {:>12.0} {:>12.0} {:>8.1}ms",
                    mult,
                    part.tier_op_count(0),
                    part.tier_op_count(1),
                    part.tier_op_count(2),
                    part.predicted_net[0],
                    part.predicted_net[1],
                    t0.elapsed().as_secs_f64() * 1e3
                );
            }
            Err(e) => println!("{:>6.2} {e}", mult),
        }
    }

    // §4.3 tier-aware rate search: the fastest rate the whole chain holds.
    let r = max_sustainable_rate_multitier(&app.graph, &prof, &cfg, 64.0, 0.01)
        .expect("no solver error")
        .expect("feasible at low rates");
    println!(
        "\nmax sustainable rate x{:.3} ({} probes, {} encode, {:?} backend)",
        r.rate, r.evaluations, r.encodes, r.backend
    );
    println!("solver: {}", report_stats(&r.partition.ilp_stats));
    let part = &r.partition;
    for (t, platform) in chain.iter().enumerate() {
        println!(
            "  tier {} ({:>8}): {:>4} ops, cpu {:>5.1}%",
            t,
            platform.name,
            part.tier_op_count(t),
            part.predicted_cpu[t] * 100.0
        );
    }
    for (b, cut) in part.link_cut_edges.iter().enumerate() {
        println!(
            "  link {} carries {} edges at {:.0} B/s (budget {:.0})",
            b,
            cut.len(),
            part.predicted_net[b],
            cfg.links[b].net_budget
        );
    }

    // Replay the winning cut over the real channels with telemetry on:
    // a LiveProfile sink folds the event stream into online estimates
    // while the run is attributed loss by loss.
    let topo = TreeTopology::chain(
        &chain,
        &[ChannelParams::mote(), ChannelParams::wifi(400_000.0)],
        1,
    );
    let feeds: Vec<SourceFeed> = app
        .sources
        .iter()
        .zip(&traces)
        .map(|(&src, t)| SourceFeed {
            source: src,
            trace: t.elements.clone(),
            rate_hz: t.rate_hz,
        })
        .collect();
    let routes = vec![LeafRoute {
        path: vec![2, 1, 0],
        site_ops: part
            .tier_ops
            .iter()
            .map(|ops| ops.iter().copied().collect())
            .collect(),
        feeds,
    }];
    let sim_cfg = SimulationConfig {
        duration_s: 5.0,
        rate_multiplier: r.rate,
        ..SimulationConfig::motes(1, 7)
    };
    let mut live = LiveProfile::new(0.2);
    let sim = simulate_deployment_tree_traced(
        &app.graph,
        &topo,
        &routes,
        &sim_cfg,
        &FailurePlan::default(),
        &mut live,
    );
    println!(
        "\ntraced replay at x{:.3}: {}",
        r.rate,
        report_deployment_stats(&sim, &topo)
    );
    let attr = attribute_tree(&sim, &topo);
    println!("attribution: {attr}");
    // Compare the online estimates against the profile the cut was
    // solved on. Flags in either direction are real information: hotter
    // means the cut's CPU rows are optimistic; far cooler means the
    // deployment's live data exercises a cheaper path than the profiling
    // trace did (the paper's representative-trace assumption, §1).
    let detector = DriftDetector::new(&prof, &telos, DriftConfig::default());
    let drift = detector.detect(&live);
    if drift.is_clean() {
        println!("drift: clean (all online estimates inside the ±50% band)");
    } else {
        println!("drift: {drift}");
    }
    // A loose gate: the chain at its certified max sustainable rate must
    // keep most of its stream; on failure, name the blamed site/link.
    let goodput = sim.leaves[0].goodput_ratio();
    if goodput < 0.4 {
        let blamed = attr
            .top()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "no losses attributed".into());
        eprintln!(
            "FAIL: the chain collapsed at its own sustainable rate \
             (goodput {goodput:.2}); dominant blame: {blamed}"
        );
        std::process::exit(1);
    }

    // Tier-coloured DOT with both cut frontiers labelled: mote tier as
    // boxes, every crossing edge annotated with the bandwidth of the hop
    // that first carries it.
    let mut tiers = Vec::new();
    for (t, ops) in part.tier_ops.iter().enumerate() {
        tiers.extend(ops.iter().map(|&id| (id, t)));
    }
    let mut cut_bandwidth = Vec::new();
    for (b, cut) in part.link_cut_edges.iter().enumerate() {
        for &e in cut {
            let bw = prof.edge_on_air_bandwidth(e, &chain[b]) * r.rate;
            if !cut_bandwidth.iter().any(|&(e2, _)| e2 == e) {
                cut_bandwidth.push((e, bw));
            }
        }
    }
    let dot = to_dot(
        &app.graph,
        &DotOptions {
            tiers,
            cut_bandwidth,
            node_partition: part.tier_ops[0].iter().copied().collect(),
            label: format!(
                "22-channel EEG on telos -> phone -> server (rate x{:.2})",
                r.rate
            ),
            ..Default::default()
        },
    );
    std::fs::write("tiered_eeg.dot", &dot).ok();
    println!("\nwrote tiered_eeg.dot ({} bytes)", dot.len());
}
