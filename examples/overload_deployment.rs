//! The overload story of §7.3: profile the network, binary-search the
//! maximum sustainable rate, then *validate* the recommended cut against
//! ground truth by simulating the deployment at every cutpoint — the
//! methodology behind Figures 9 and 10.
//!
//! Run with: `cargo run --release --example overload_deployment`

use wishbone::prelude::*;

fn main() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(120, 3);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");
    let mote = Platform::tmote_sky();

    // 1. Network profiling (§7.3.1): max send rate for 90% reception.
    let channel = ChannelParams::mote();
    let netprof = profile_network(channel, 1, 28, 0.90, 99);
    println!(
        "network profile: {:.0} B/s aggregate payload at >=90% reception",
        netprof.max_aggregate_payload_rate
    );

    // 2. Binary search over data rates (§4.3).
    let mut cfg = PartitionConfig::for_platform(&mote);
    cfg.net_budget = netprof.max_aggregate_payload_rate;
    let result = max_sustainable_rate(&app.graph, &prof, &mote, &cfg, 8.0, 0.01)
        .expect("solver ok")
        .expect("feasible at low rate");
    let recommended = app
        .stages
        .iter()
        .rev()
        .find(|(_, id)| result.partition.node_ops.contains(id))
        .map(|&(n, _)| n)
        .unwrap();
    println!(
        "binary search: max rate x{:.3} of 8 kHz; recommended cut after '{}'",
        result.rate, recommended
    );
    println!("solver: {}\n", report_stats(&result.partition.ilp_stats));

    // 3. Ground truth: simulate every cutpoint on a 1-mote deployment.
    println!("deployment simulation at the recommended rate (1 TMote + basestation):");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "cut after", "input %", "msgs %", "goodput %"
    );
    let elems = app.trace_elements(200, 11);
    let mut best: Option<(&str, f64)> = None;
    let mut goods: Vec<(&str, f64)> = Vec::new();
    for (name, node_set) in app.cutpoints() {
        let dcfg = SimulationConfig {
            duration_s: 20.0,
            rate_multiplier: result.rate,
            ..SimulationConfig::motes(1, 17)
        };
        let report = simulate_deployment(
            &app.graph, &node_set, app.source, &elems, 40.0, &mote, channel, &dcfg,
        );
        let good = report.goodput_ratio() * 100.0;
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>9.1}%",
            name,
            report.input_processed_ratio() * 100.0,
            report.element_delivery_ratio() * 100.0,
            good
        );
        if best.is_none_or(|(_, g)| good > g) {
            best = Some((name, good));
        }
        goods.push((name, good));
    }
    let (best_cut, best_good) = best.unwrap();
    println!(
        "\nempirical best cut: '{best_cut}' ({best_good:.1}% goodput); \
         Wishbone recommended '{recommended}'"
    );

    // Assertion path (the same bar tests/end_to_end_mixed.rs holds the
    // pipeline to): the recommendation must be competitive with the
    // empirical peak, so a solver or model regression aborts the example
    // instead of printing a quietly wrong table.
    let rec_good = goods
        .iter()
        .find(|(name, _)| *name == recommended)
        .map(|&(_, g)| g)
        .expect("recommended cut is one of the cutpoints");
    let mut sorted: Vec<f64> = goods.iter().map(|&(_, g)| g).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!(
        rec_good >= 0.70 * best_good && rec_good >= sorted[1] - 1e-9,
        "recommended cut '{recommended}' ({rec_good:.1}%) must be a top-2 cut \
         within 70% of the empirical best ({best_good:.1}%)"
    );
    println!("assertion path OK: recommendation is a top-2 cut within 70% of peak");
}
