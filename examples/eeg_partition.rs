//! Partition the full 22-channel EEG application (the paper's
//! 1412-operator stress case, §7.1): show how preprocessing shrinks the
//! ILP, how long the solver takes, and how the node partition shrinks as
//! the input rate grows.
//!
//! Run with: `cargo run --release --example eeg_partition`

use wishbone::prelude::*;

fn main() {
    let mut app = build_eeg_app(EegParams::default());
    println!(
        "EEG app: {} channels, {} operators, {} edges (paper: 1412 operators)",
        app.n_channels,
        app.graph.operator_count(),
        app.graph.edge_count()
    );

    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");

    let mote = Platform::tmote_sky();

    // One partition at a moderate rate, with solver statistics.
    let cfg = PartitionConfig::for_platform(&mote).at_rate(0.5);
    match partition(&app.graph, &prof, &mote, &cfg) {
        Ok(part) => {
            println!(
                "\nrate x0.5: {} of {} operators on the node, cpu {:.1}%, net {:.0} B/s",
                part.node_op_count(),
                app.graph.operator_count(),
                part.predicted_cpu * 100.0,
                part.predicted_net
            );
            println!(
                "preprocessing merged {} vertices down to {}; ILP had {} vars / {} constraints",
                part.merge_stats.0, part.merge_stats.1, part.problem_size.0, part.problem_size.1
            );
            println!(
                "solver: optimum discovered at {:?}, proven at {:?} ({} nodes, {} warm starts)",
                part.ilp_stats.time_to_best,
                part.ilp_stats.total_time,
                part.ilp_stats.nodes,
                part.ilp_stats.warm_starts
            );
            println!(
                "solver: {} — regressions in BENCH_solver.json should reproduce here",
                report_stats(&part.ilp_stats)
            );
        }
        Err(e) => println!("rate x0.5: {e}"),
    }

    // Fig 5a in miniature: node-partition size vs rate for two platforms.
    // Each platform's graph build + preprocessing + ILP encoding happens
    // once; every rate point re-solves the prepared problem in place.
    // Overloaded rates are proven infeasible by presolve (the pinned
    // sources' CPU sum alone overruns the budget) before a single simplex
    // iteration, so no generous time limit is needed — the 2 s cap is a
    // pure safety net for the feasible-but-hard cells.
    println!("\noperators in optimal node partition vs input rate:");
    println!("{:>8} {:>10} {:>10}", "rate", "TMoteSky", "NokiaN80");
    let n80 = Platform::nokia_n80();
    let mut cfg = PartitionConfig::for_platform(&mote);
    cfg.ilp.time_limit = Some(std::time::Duration::from_secs(2));
    let mut prep_mote =
        PreparedPartition::new(&app.graph, &prof, &mote, &cfg).expect("pin analysis succeeds");
    let mut cfg_n80 = PartitionConfig::for_platform(&n80);
    cfg_n80.ilp.time_limit = Some(std::time::Duration::from_secs(2));
    let mut prep_n80 =
        PreparedPartition::new(&app.graph, &prof, &n80, &cfg_n80).expect("pin analysis succeeds");
    if std::env::args().any(|a| a == "--audit") {
        for (prep, name) in [(&prep_mote, "TMoteSky"), (&prep_n80, "NokiaN80")] {
            let report = prep.audit();
            println!("audit[{name}]: {}", report.summary());
            assert!(!report.has_errors(), "static audit found errors:\n{report}");
        }
    }
    let mut sweep_stats: Vec<(String, u64, u64)> = Vec::new();
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut count = |prep: &mut PreparedPartition, name: &str| -> String {
            match prep.solve_at(mult) {
                Ok(part) => {
                    sweep_stats.push((
                        format!("{name} x{mult}"),
                        part.ilp_stats.warm_starts,
                        part.ilp_stats.cold_starts,
                    ));
                    part.node_op_count().to_string()
                }
                Err(_) => "-".into(),
            }
        };
        let mote_count = count(&mut prep_mote, "TMoteSky");
        let n80_count = count(&mut prep_n80, "NokiaN80");
        println!("{mult:>8.2} {mote_count:>10} {n80_count:>10}");
    }

    // Solver diagnostics for the sweep: which backend ran the probes and
    // how much warm-start reuse they got (a bench regression in
    // BENCH_solver.json should be explainable from these numbers alone).
    println!(
        "\nsweep backends: TMoteSky -> {:?}, NokiaN80 -> {:?}",
        prep_mote.solver_backend(),
        prep_n80.solver_backend()
    );
    let warm: u64 = sweep_stats.iter().map(|s| s.1).sum();
    let cold: u64 = sweep_stats.iter().map(|s| s.2).sum();
    println!("sweep node LPs: {warm} warm-started, {cold} cold across all feasible probes");
}
