//! §9 extension: mixed networks. "A single logical node partition can take
//! on different physical partitions at different nodes ... by running the
//! partitioning algorithm once for each type of node."
//!
//! Scenario: a deployment with 16 TMote Sky motes and 4 Gumstix
//! microservers all running the same speech-detection program.
//!
//! Run with: `cargo run --release --example mixed_network`

use wishbone::core::{partition_mixed, NodeClass};
use wishbone::prelude::*;

fn main() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(120, 7);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    let gumstix = Platform::gumstix();
    let classes = vec![
        NodeClass {
            // Motes run at a reduced rate (their radio share of the channel).
            config: PartitionConfig::for_platform(&mote)
                .with_measured_overheads(&mote)
                .at_rate(0.1),
            platform: mote,
            count: 16,
        },
        NodeClass {
            config: PartitionConfig::for_platform(&gumstix),
            platform: gumstix,
            count: 4,
        },
    ];

    let mixed = partition_mixed(&app.graph, &prof, &classes).expect("both classes partition");
    println!("mixed deployment: one logical program, two physical partitions\n");
    for c in &mixed.classes {
        let last = app
            .stages
            .iter()
            .rev()
            .find(|(_, id)| c.partition.node_ops.contains(id))
            .map(|&(n, _)| n)
            .unwrap_or("nothing");
        println!(
            "{:>9} x{:<3} -> {} ops on-node (cut after '{}'), cpu {:.1}%, net {:.0} B/s",
            c.platform_name,
            c.count,
            c.partition.node_op_count(),
            last,
            c.partition.predicted_cpu * 100.0,
            c.partition.predicted_net
        );
        println!(
            "{:>13} solver: {}",
            "",
            report_stats(&c.partition.ilp_stats)
        );
    }
    println!(
        "\nserver must accept partial results at {} distinct cut edges; \
         aggregate offered load {:.0} B/s",
        mixed.server_entry_edges.len(),
        mixed.total_predicted_net()
    );
    let union = mixed.server_side_union(&app.graph);
    println!(
        "server-side code covers {} of {} operators (union across classes)",
        union.len(),
        app.graph.operator_count()
    );
}
