//! Quickstart: build the speech-detection pipeline, profile it on sample
//! audio, partition it for a TMote Sky, and dump the GraphViz
//! visualization the Wishbone compiler would show you.
//!
//! Run with: `cargo run --example quickstart`

use wishbone::dataflow::dot::{to_dot, DotOptions};
use wishbone::prelude::*;

fn main() {
    // 1. The application: a WaveScript-style dataflow graph.
    let mut app = build_speech_app(SpeechParams::default());
    println!(
        "speech pipeline: {} operators, {} edges",
        app.graph.operator_count(),
        app.graph.edge_count()
    );

    // 2. Profile on representative sample data (40 frames = 1 s of audio).
    let trace = app.trace(40, 42);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    println!("\nper-operator profile on {}:", mote.name);
    println!(
        "{:<12} {:>14} {:>16}",
        "operator", "us/frame", "out bytes/s"
    );
    for (i, &(name, id)) in app.stages.iter().enumerate() {
        let us = prof.seconds_per_invocation(id, &mote) * 1e6;
        let bw = prof.edge_bandwidth(wishbone::dataflow::EdgeId(i));
        println!("{name:<12} {us:>14.1} {bw:>16.0}");
    }

    // 3. Partition. At the full 8 kHz rate nothing fits on a TMote, so ask
    // Wishbone for the best partition at 1/8 rate.
    let cfg = PartitionConfig::for_platform(&mote).at_rate(0.125);
    match partition(&app.graph, &prof, &mote, &cfg) {
        Ok(part) => {
            let names: Vec<&str> = app
                .stages
                .iter()
                .filter(|(_, id)| part.node_ops.contains(id))
                .map(|&(n, _)| n)
                .collect();
            println!("\noptimal node partition at 1/8 rate: {names:?}");
            println!(
                "predicted: {:.1}% CPU, {:.0} B/s over the radio (objective {:.1})",
                part.predicted_cpu * 100.0,
                part.predicted_net,
                part.objective
            );
            println!(
                "ILP: {} vars, {} constraints, solved in {:?}",
                part.problem_size.0, part.problem_size.1, part.ilp_stats.total_time
            );
            println!("solver: {}", report_stats(&part.ilp_stats));

            // 4. The compiler's visualization (§3): heat = CPU, boxes =
            // node partition, cut edges labelled with their profiled
            // on-air bandwidth at the partitioned rate.
            let dot = to_dot(
                &app.graph,
                &DotOptions {
                    heat: prof.heat(&mote),
                    node_partition: part.node_ops.iter().copied().collect(),
                    label: "speech detection on TMote Sky (1/8 rate)".into(),
                    cut_bandwidth: part
                        .cut_edges
                        .iter()
                        .map(|&e| {
                            (
                                e,
                                prof.edge_on_air_bandwidth(e, &mote) * cfg.rate_multiplier,
                            )
                        })
                        .collect(),
                    ..Default::default()
                },
            );
            std::fs::write("speech_partition.dot", &dot).ok();
            println!("\nwrote speech_partition.dot ({} bytes)", dot.len());
        }
        Err(e) => println!("no feasible partition: {e}"),
    }
}
