//! `cargo run -p xtask -- lint` — repo-specific invariants clippy
//! cannot express, enforced by plain text scanning (offline, no
//! registry deps, no proc macros):
//!
//! 1. **no-unwrap** — `.unwrap()` is banned in the solver hot paths
//!    (`crates/ilp/src/{simplex,revised,lu,branch_bound}.rs`); a panic
//!    there must document its invariant via `.expect("...")`.
//! 2. **float-eq** — raw `f64` `==`/`!=` against a float literal is
//!    banned in `crates/ilp/src` and `crates/core/src`; intended
//!    exact-zero tests go through `wishbone_ilp::is_exact_zero`, whose
//!    one definition site carries the `audit:allow(float-eq)` marker.
//! 3. **pub-docs** — every `pub` item in `crates/ilp/src` and
//!    `crates/core/src` carries a doc comment, including items in
//!    private modules `#[warn(missing_docs)]` cannot see.
//! 4. **oracle-anchors** — the differential-oracle encoders
//!    (`encode_multitier`, the binary `Encoding::Restricted` path, the
//!    `SolverBackend::Dense` tableau) must stay referenced from tests,
//!    so they cannot be silently deleted out from under the parity
//!    suite.
//!
//! Test modules are exempt from rules 1–3: by repo convention
//! `#[cfg(test)] mod tests` is the tail of each file, so scanning
//! stops at the first `#[cfg(test)]` line. A site may opt out of a
//! rule with a trailing `// audit:allow(<rule>): <reason>` comment.
//!
//! Exit status is nonzero iff any violation is found, which is what
//! gates CI.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files where `.unwrap()` would panic inside the simplex /
/// branch-and-bound inner loops — or, for the fleet service, take a
/// whole worker thread (and every shape sharded onto it) down with one
/// bad request.
const HOT_PATHS: [&str; 5] = [
    "crates/ilp/src/simplex.rs",
    "crates/ilp/src/revised.rs",
    "crates/ilp/src/lu.rs",
    "crates/ilp/src/branch_bound.rs",
    "crates/fleet/src/lib.rs",
];

/// Directories whose sources are held to the float-eq and pub-docs
/// rules (the solver and the encoders — where a silent float bug costs
/// the most).
const LINTED_DIRS: [&str; 3] = ["crates/ilp/src", "crates/core/src", "crates/fleet/src"];

/// `(needle, why it must survive)` — each must appear in at least one
/// test file.
const ORACLE_ANCHORS: [(&str, &str); 6] = [
    (
        "encode_multitier",
        "the k-way chain encoder is the parity oracle for deployments",
    ),
    (
        "Encoding::Restricted",
        "the binary restricted encoder anchors the k = 2 parity chain",
    ),
    (
        "SolverBackend::Dense",
        "the dense tableau is the differential oracle for the sparse backend",
    ),
    (
        "partition_approx",
        "the multilevel heuristic's certificates are pinned against the exact ILP",
    ),
    (
        "NullSink::NULL",
        "the trace off path must stay pinned by the zero-overhead byte-identical test",
    ),
    (
        "fleet_batch_matches_serial_one_shot",
        "fleet cache hits must stay bit-identical to serial one-shot solves",
    ),
];

struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask; its manifest dir's parent is the root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the repo root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations: Vec<Violation> = Vec::new();

    for rel in HOT_PATHS {
        check_no_unwrap(&root, rel, &mut violations);
    }
    for dir in LINTED_DIRS {
        for file in rust_sources(&root.join(dir)) {
            check_float_eq(&root, &file, &mut violations);
            check_pub_docs(&root, &file, &mut violations);
        }
    }
    check_oracle_anchors(&root, &mut violations);

    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} hot-path files, {} linted dirs, {} anchors)",
            HOT_PATHS.len(),
            LINTED_DIRS.len(),
            ORACLE_ANCHORS.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Every `.rs` file under `dir`, recursively, in sorted order.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_sources(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// The non-test prefix of a source file: by repo convention the
/// `#[cfg(test)] mod tests` block is the file tail, so everything from
/// the first `#[cfg(test)]` on is test code.
fn non_test_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .take_while(|(_, l)| !l.trim_start().starts_with("#[cfg(test)]"))
        .map(|(i, l)| (i + 1, l))
}

fn allowed(line: &str, rule: &str) -> bool {
    line.contains(&format!("audit:allow({rule})"))
}

/// Strip string literals and `//` comments so operators inside them
/// don't trip the scanners. Not a full lexer: it handles the escapes
/// that actually occur in this repo's sources.
fn strip_strings_and_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        if in_char {
            match c {
                '\\' => {
                    chars.next();
                }
                '\'' => in_char = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            // A lifetime tick is followed by an identifier char and no
            // closing quote nearby; treating only quoted single chars
            // as char literals keeps lifetimes intact.
            '\'' => {
                let mut look = chars.clone();
                let payload = look.next();
                let is_char_lit = match payload {
                    Some('\\') => true,
                    Some(_) => look.next() == Some('\''),
                    None => false,
                };
                if is_char_lit {
                    in_char = true;
                } else {
                    out.push(c);
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn check_no_unwrap(root: &Path, rel: &str, violations: &mut Vec<Violation>) {
    let path = root.join(rel);
    let Ok(text) = std::fs::read_to_string(&path) else {
        violations.push(Violation {
            file: path,
            line: 0,
            rule: "no-unwrap",
            message: "hot-path file is missing (update xtask if it moved)".to_string(),
        });
        return;
    };
    for (line_no, line) in non_test_lines(&text) {
        if allowed(line, "unwrap") {
            continue;
        }
        if strip_strings_and_comments(line).contains(".unwrap()") {
            violations.push(Violation {
                file: PathBuf::from(rel),
                line: line_no,
                rule: "no-unwrap",
                message: "solver hot path: use .expect(\"<invariant>\") so a panic \
                          names the violated invariant"
                    .to_string(),
            });
        }
    }
}

/// Does `token` look like a float literal (`0.0`, `1e-9`, `2.5f64`)?
fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.') {
        return false;
    }
    // Distinguish 1.0 / 1e-9 from integer literals like 10.
    (t.contains('.') || t.contains(['e', 'E'])) && t.parse::<f64>().is_ok()
}

fn check_float_eq(root: &Path, path: &Path, violations: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    for (line_no, raw) in non_test_lines(&text) {
        if allowed(raw, "float-eq") {
            continue;
        }
        let line = strip_strings_and_comments(raw);
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(op) {
                let at = from + pos;
                from = at + op.len();
                let left = line[..at]
                    .rsplit(|c: char| c.is_whitespace() || "([{,;&|".contains(c))
                    .next()
                    .unwrap_or("");
                let right = line[at + op.len()..]
                    .trim_start()
                    .split(|c: char| c.is_whitespace() || ")]},;&|".contains(c))
                    .next()
                    .unwrap_or("");
                if is_float_literal(left) || is_float_literal(right) {
                    violations.push(Violation {
                        file: rel.clone(),
                        line: line_no,
                        rule: "float-eq",
                        message: format!(
                            "raw float {op} comparison — use wishbone_ilp::is_exact_zero \
                             for exact-zero tests or an explicit epsilon, or annotate \
                             `// audit:allow(float-eq): <reason>`"
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// Is this trimmed line the start of a `pub` item that needs docs?
fn pub_item_name(trimmed: &str) -> Option<&str> {
    if !trimmed.starts_with("pub ") {
        return None; // pub(crate)/pub(super) are not public API
    }
    let rest = &trimmed[4..];
    // Out-of-line modules (`pub mod x;`) carry their docs as the module
    // file's own `//!` header, which rustdoc accepts.
    if rest.starts_with("mod ") && trimmed.ends_with(';') {
        return None;
    }
    for kw in [
        "fn ",
        "struct ",
        "enum ",
        "trait ",
        "mod ",
        "const ",
        "static ",
        "type ",
        "unsafe fn ",
    ] {
        if let Some(after) = rest.strip_prefix(kw) {
            let name: &str = after
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("");
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None // `pub use` re-exports inherit their target's docs
}

fn check_pub_docs(root: &Path, path: &Path, violations: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let lines: Vec<&str> = text.lines().collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());
    for i in 0..test_start {
        let trimmed = lines[i].trim_start();
        if allowed(lines[i], "pub-docs") {
            continue;
        }
        let Some(name) = pub_item_name(trimmed) else {
            continue;
        };
        // Walk upward over attributes/derives to the nearest comment.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = lines[j].trim_start();
            if above.starts_with("#[") || above.starts_with(')') || above.starts_with(']') {
                continue; // attribute (possibly multi-line) — keep walking
            }
            documented = above.starts_with("///") || above.starts_with("/**");
            break;
        }
        if !documented {
            violations.push(Violation {
                file: rel.clone(),
                line: i + 1,
                rule: "pub-docs",
                message: format!("public item `{name}` has no doc comment"),
            });
        }
    }
}

fn check_oracle_anchors(root: &Path, violations: &mut Vec<Violation>) {
    // Test corpus: the workspace-level tests/ plus every crate's tests/.
    let mut test_files = rust_sources(&root.join("tests"));
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            test_files.extend(rust_sources(&entry.path().join("tests")));
        }
    }
    let corpus: String = test_files
        .iter()
        .filter_map(|p| std::fs::read_to_string(p).ok())
        .collect();
    for (needle, why) in ORACLE_ANCHORS {
        if !corpus.contains(needle) {
            violations.push(Violation {
                file: PathBuf::from("tests/"),
                line: 0,
                rule: "oracle-anchors",
                message: format!(
                    "no test references `{needle}` — {why}; the parity suite no \
                     longer pins it"
                ),
            });
        }
    }
}
