//! Fleet-service determinism suite (PR 10 acceptance): a shuffled
//! 200-request batch answered through the sharded, shape-cached
//! [`FleetServer`] must be **bit-identical** — objectives, placements,
//! and predicted load vectors — to answering each request with a serial
//! one-shot [`partition_deployment`], at every worker count. Cache hits
//! must not leak state: a request served by a warm `PreparedDeployment`
//! that has already answered different counts, budgets, and rates has to
//! produce the same bits as a cold encode.
//!
//! Everything here is deterministic by construction (a fixed LCG drives
//! the shuffle and the parameter draws), so a failure is a real
//! state-leak bug, not flake.

use std::sync::Arc;

use wishbone::core::{
    partition_deployment, Deployment, DeploymentConfig, DeploymentPartition, LinkSpec,
    PartitionError, Site,
};
use wishbone::dataflow::{ExecCtx, FnWork, Graph, Value};
use wishbone::prelude::{
    profile, run_batch, FleetConfig, FleetRequest, GraphBuilder, GraphProfile, Platform,
    SourceTrace,
};

/// Tiny deterministic PRNG — no vendored `rand` in tier-1 tests.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A small reducing pipeline; `variant` perturbs costs and decimation so
/// the two graphs encode differently (distinct shapes, not just distinct
/// pointers).
fn mk_app(variant: usize) -> (Graph, wishbone::dataflow::OperatorId) {
    let mut b = GraphBuilder::new();
    b.enter_node_namespace();
    let src = b.source("src");
    let mut prev = src;
    for s in 0..2 + variant {
        let cost = (600 + 400 * variant as u64) * (s as u64 + 1);
        let keep = 2 + s;
        prev = b.transform(
            format!("stage{s}"),
            Box::new(FnWork(move |_p: usize, v: &Value, cx: &mut ExecCtx| {
                let w = v.as_i16s().unwrap();
                cx.meter().loop_scope(cost, |m| {
                    m.int(cost);
                    m.fadd(cost / 2);
                });
                cx.emit(Value::VecI16(w.iter().step_by(keep).copied().collect()));
            })),
            prev,
        );
    }
    b.exit_namespace();
    b.sink("out", prev);
    (b.finish().unwrap(), src.0)
}

fn profiled(variant: usize) -> (Arc<Graph>, Arc<GraphProfile>) {
    let (mut g, src) = mk_app(variant);
    let trace = SourceTrace {
        source: src,
        elements: (0..12).map(|i| Value::VecI16(vec![i as i16; 96])).collect(),
        rate_hz: 25.0,
    };
    let prof = profile(&mut g, &[trace]).expect("fixture graphs profile cleanly");
    (Arc::new(g), Arc::new(prof))
}

/// `deep == false`: root → gateway → motes (star). `deep == true`: an
/// extra relay tier between root and gateway. `beta` prices the
/// gateway-to-root uplink and is part of the shape; `count` and the
/// gateway CPU budget are the delta-reachable per-request knobs.
fn mk_dep(deep: bool, beta: f64, count: usize, gw_budget: f64) -> Deployment {
    let phone = Platform::nokia_n80();
    let mote = Platform::tmote_sky();
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let mut parent = dep.root();
    if deep {
        parent = dep.attach(
            parent,
            Site::new("relay", &phone),
            LinkSpec {
                beta,
                net_budget: f64::INFINITY,
            },
        );
    }
    let gw = dep.attach(
        parent,
        Site::new("gw", &phone).with_cpu_budget(gw_budget),
        LinkSpec {
            beta,
            net_budget: 4000.0,
        },
    );
    dep.attach(
        gw,
        Site::new("motes", &mote).with_count(count),
        LinkSpec {
            beta: 1.0,
            net_budget: f64::INFINITY,
        },
    );
    dep
}

fn assert_partitions_bit_identical(
    ctx: &str,
    fleet: &Result<DeploymentPartition, PartitionError>,
    serial: &Result<DeploymentPartition, PartitionError>,
) {
    match (fleet, serial) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.objective.to_bits(),
                b.objective.to_bits(),
                "{ctx}: objective diverged ({} vs {})",
                a.objective,
                b.objective
            );
            assert_eq!(a.leaves.len(), b.leaves.len(), "{ctx}: leaf count");
            for (la, lb) in a.leaves.iter().zip(&b.leaves) {
                assert_eq!(la.site_ops, lb.site_ops, "{ctx}: placement diverged");
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&la.predicted_cpu),
                    bits(&lb.predicted_cpu),
                    "{ctx}: predicted CPU diverged"
                );
                assert_eq!(
                    bits(&la.predicted_net),
                    bits(&lb.predicted_net),
                    "{ctx}: predicted net diverged"
                );
            }
        }
        (Err(_), Err(_)) => {}
        (a, b) => panic!(
            "{ctx}: feasibility diverged: fleet {:?} vs serial {:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

/// The PR-10 oracle anchor: shuffled batch through 1, 2, and 8 workers,
/// every response bit-identical to the serial one-shot answer.
#[test]
fn fleet_batch_matches_serial_one_shot() {
    // 8 distinct shapes: 2 graphs × 2 tree depths × 2 uplink betas. The
    // graph/profile Arcs are shared across every request of a shape —
    // exactly how a fleet client would hold them.
    let apps = [profiled(0), profiled(1)];
    let shapes: Vec<(usize, bool, f64)> = [0usize, 1]
        .iter()
        .flat_map(|&g| {
            [false, true]
                .iter()
                .flat_map(move |&deep| [1.0f64, 2.5].iter().map(move |&beta| (g, deep, beta)))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(shapes.len(), 8);

    // 200 requests, parameters drawn and then shuffled by a fixed LCG —
    // same-shape requests land adjacent and far apart, with different
    // counts, budgets, and rates in between, so cache hits are served
    // from instances mutated by unrelated requests.
    let mut rng = Lcg(0x5eed_1009);
    let mut params: Vec<(usize, usize, f64, f64)> = (0..200)
        .map(|_| {
            let shape = rng.pick(shapes.len());
            let count = 1 + rng.pick(4);
            let gw_budget = [0.05, 0.1, 0.2, 0.4][rng.pick(4)];
            let rate = [0.05, 0.1, 0.2, 0.35][rng.pick(4)];
            (shape, count, gw_budget, rate)
        })
        .collect();
    for i in (1..params.len()).rev() {
        params.swap(i, rng.pick(i + 1));
    }

    let cfg = DeploymentConfig::default();
    let mk_request = |id: u64, &(shape, count, gw_budget, rate): &(usize, usize, f64, f64)| {
        let (graph_idx, deep, beta) = shapes[shape];
        let (graph, prof) = &apps[graph_idx];
        FleetRequest {
            id,
            graph: Arc::clone(graph),
            profile: Arc::clone(prof),
            deployment: mk_dep(deep, beta, count, gw_budget),
            config: cfg.clone(),
            rate,
        }
    };

    // Serial oracle: a fresh encode per request, no shared state at all.
    let serial: Vec<Result<DeploymentPartition, PartitionError>> = params
        .iter()
        .map(|&(shape, count, gw_budget, rate)| {
            let (graph_idx, deep, beta) = shapes[shape];
            let (graph, prof) = &apps[graph_idx];
            partition_deployment(
                graph,
                prof,
                &mk_dep(deep, beta, count, gw_budget),
                &cfg.clone().at_rate(rate),
            )
        })
        .collect();

    for workers in [1usize, 2, 8] {
        let requests: Vec<FleetRequest> = params
            .iter()
            .enumerate()
            .map(|(i, p)| mk_request(i as u64, p))
            .collect();
        let (responses, stats) = run_batch(
            FleetConfig {
                workers,
                cache: true,
                deterministic: true,
            },
            requests,
        );
        assert_eq!(responses.len(), params.len());
        assert_eq!(stats.requests, params.len() as u64);
        assert_eq!(stats.distinct_shapes, 8, "{workers} workers: shape census");
        // ≤ 8 shapes can need at most 8 encodes; everything else must
        // ride `apply_delta` on a cached instance.
        assert_eq!(
            stats.cache_misses, 8,
            "{workers} workers: every shape encodes exactly once"
        );
        assert_eq!(stats.cache_hits, params.len() as u64 - 8);
        assert_eq!(stats.encodes_avoided, params.len() as u64 - 8);
        for (resp, oracle) in responses.iter().zip(&serial) {
            assert_partitions_bit_identical(
                &format!("{workers} workers, request {}", resp.id),
                &resp.result,
                oracle,
            );
        }
    }
}

/// The cacheless arm must also match serial answers — it is the bench's
/// cold baseline, and "cold" may not mean "different".
#[test]
fn cacheless_fleet_matches_serial_one_shot() {
    let (graph, prof) = profiled(0);
    let cfg = DeploymentConfig::default();
    let params: Vec<(usize, f64)> = vec![(1, 0.1), (3, 0.2), (2, 0.35), (4, 0.05)];
    let serial: Vec<_> = params
        .iter()
        .map(|&(count, rate)| {
            partition_deployment(
                &graph,
                &prof,
                &mk_dep(false, 1.0, count, 0.2),
                &cfg.clone().at_rate(rate),
            )
        })
        .collect();
    let requests: Vec<FleetRequest> = params
        .iter()
        .enumerate()
        .map(|(i, &(count, rate))| FleetRequest {
            id: i as u64,
            graph: Arc::clone(&graph),
            profile: Arc::clone(&prof),
            deployment: mk_dep(false, 1.0, count, 0.2),
            config: cfg.clone(),
            rate,
        })
        .collect();
    let (responses, stats) = run_batch(
        FleetConfig {
            workers: 2,
            cache: false,
            deterministic: true,
        },
        requests,
    );
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.encodes_avoided, 0);
    for (resp, oracle) in responses.iter().zip(&serial) {
        assert_partitions_bit_identical(
            &format!("cacheless request {}", resp.id),
            &resp.result,
            oracle,
        );
    }
}
