//! End-to-end integration: profile → partition → deploy for the speech
//! application, validating the paper's headline claims (§7.2–7.3).

use wishbone::prelude::*;

fn profiled_app() -> (SpeechApp, GraphProfile) {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(120, 42);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");
    (app, prof)
}

#[test]
fn tmote_cannot_fit_at_full_rate_but_fits_when_slowed() {
    let (app, prof) = profiled_app();
    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote);
    // Full 8 kHz: infeasible on a TMote (both CPU and radio are too small).
    assert!(matches!(
        partition(&app.graph, &prof, &mote, &cfg),
        Err(PartitionError::Infeasible)
    ));
    // The §4.3 rate search finds a positive sustainable rate.
    let r = max_sustainable_rate(&app.graph, &prof, &mote, &cfg, 4.0, 0.01)
        .unwrap()
        .expect("some rate is sustainable");
    assert!(r.rate > 0.001 && r.rate < 1.0, "rate {}", r.rate);
    // At that rate, the selected cut is an intermediate one (not all-server,
    // not necessarily everything).
    assert!(r.partition.node_op_count() >= 1);
    assert!(r.partition.predicted_cpu <= 1.0 + 1e-9);
}

#[test]
fn optimal_cut_beats_endpoint_partitions_in_deployment() {
    // The paper: "our weakest platform got 0% of speaker detection results
    // through ... when doing all work on the server, and 0.5% when doing
    // all work at the node. We can do 20x better by picking the right
    // intermediate partition."
    let (app, prof) = profiled_app();
    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote);
    let r = max_sustainable_rate(&app.graph, &prof, &mote, &cfg, 4.0, 0.01)
        .unwrap()
        .expect("feasible");

    let elems = app.trace_elements(200, 9);
    let channel = ChannelParams::mote();
    let run = |node_set: &std::collections::HashSet<OperatorId>| -> f64 {
        let dcfg = SimulationConfig {
            duration_s: 20.0,
            rate_multiplier: 1.0, // full rate: the overload case
            ..SimulationConfig::motes(1, 33)
        };
        simulate_deployment(
            &app.graph, node_set, app.source, &elems, 40.0, &mote, channel, &dcfg,
        )
        .goodput_ratio()
    };

    let cuts = app.cutpoints();
    let all_server_good = run(&cuts.first().unwrap().1);
    let all_node_good = run(&cuts.last().unwrap().1);
    let recommended = run(&r.partition.node_ops);

    // All-server drives the mote radio into congestion collapse (paper:
    // ~0% goodput); the recommended intermediate cut delivers data. The
    // all-node margin is smaller here than the paper's 0.5% because our
    // calibrated CPU gap (~8x at full rate) is milder than their ~80x;
    // the ordering is what the claim is about.
    assert!(
        recommended > 20.0 * all_server_good.max(1e-4),
        "recommended {recommended} vs all-server {all_server_good}"
    );
    assert!(
        recommended > all_node_good,
        "recommended {recommended} vs all-node {all_node_good}"
    );
    assert!(
        recommended > 0.02,
        "recommended cut must actually deliver data"
    );
}

#[test]
fn recommended_cut_matches_empirical_peak() {
    // §7.3: "The optimal partitioning at that data rate was in fact cut
    // point 4, right after filterbank, as in the empirical data." We apply
    // the measured-overhead derating (the paper's proposed fix for its
    // 11.5%-predicted vs 15%-measured CPU gap) so the recommendation
    // doesn't over-commit the CPU that the OS will eat.
    let (app, prof) = profiled_app();
    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote).with_measured_overheads(&mote);
    let r = max_sustainable_rate(&app.graph, &prof, &mote, &cfg, 4.0, 0.01)
        .unwrap()
        .expect("feasible");

    let elems = app.trace_elements(200, 5);
    let channel = ChannelParams::mote();
    let mut best: Option<(usize, f64)> = None;
    let mut recommended_good = None;
    for (i, (_name, node_set)) in app.cutpoints().into_iter().enumerate() {
        let dcfg = SimulationConfig {
            duration_s: 30.0,
            rate_multiplier: r.rate,
            ..SimulationConfig::motes(1, 77)
        };
        let rep = simulate_deployment(
            &app.graph, &node_set, app.source, &elems, 40.0, &mote, channel, &dcfg,
        );
        let g = rep.goodput_ratio();
        if node_set == r.partition.node_ops {
            recommended_good = Some(g);
        }
        if best.is_none_or(|(_, bg)| g > bg) {
            best = Some((i, g));
        }
    }
    let (_, best_good) = best.unwrap();
    let rec = recommended_good.expect("recommendation is one of the cutpoints");
    // The recommendation must land among the winning cuts: at least 70% of
    // the empirical peak and better than every non-top-2 alternative. (The
    // paper matched its 6-point grid exactly; the residual gap here is the
    // per-packet CPU cost that even the derated additive model omits —
    // the same limitation §7.3 discusses.)
    assert!(
        rec >= 0.70 * best_good,
        "recommended cut goodput {rec} vs empirical best {best_good}"
    );
    let mut all_goods: Vec<f64> = Vec::new();
    for (_n, node_set) in app.cutpoints() {
        let dcfg = SimulationConfig {
            duration_s: 30.0,
            rate_multiplier: r.rate,
            ..SimulationConfig::motes(1, 77)
        };
        let rep = simulate_deployment(
            &app.graph, &node_set, app.source, &elems, 40.0, &mote, channel, &dcfg,
        );
        all_goods.push(rep.goodput_ratio());
    }
    all_goods.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!(
        rec >= all_goods[1] - 1e-9,
        "recommendation must be a top-2 cut"
    );
}

#[test]
fn predicted_cpu_close_to_simulated_cpu() {
    // §7.3's validation: predictions are additive and slightly optimistic
    // (Gumstix: 11.5% predicted vs 15% measured — a ~1.3x OS factor).
    let (app, prof) = profiled_app();
    let gumstix = Platform::gumstix();
    let cfg = PartitionConfig::for_platform(&gumstix);
    let part = partition(&app.graph, &prof, &gumstix, &cfg).expect("gumstix fits");

    let elems = app.trace_elements(200, 21);
    let dcfg = SimulationConfig {
        duration_s: 20.0,
        task_model: TaskModel::threaded(),
        per_packet_cpu_s: 20e-6,
        ..SimulationConfig::motes(1, 5)
    };
    let rep = simulate_deployment(
        &app.graph,
        &part.node_ops,
        app.source,
        &elems,
        40.0,
        &gumstix,
        ChannelParams::wifi(400_000.0),
        &dcfg,
    );
    let predicted = part.predicted_cpu;
    let measured = rep.node_cpu_utilization;
    assert!(
        measured > predicted,
        "measured ({measured:.3}) must exceed the additive prediction ({predicted:.3})"
    );
    assert!(
        measured < predicted * 1.6,
        "but only by the OS-overhead factor: {measured:.3} vs {predicted:.3}"
    );
}

#[test]
fn faster_platforms_sustain_higher_rates() {
    // Fig 5b, cepstral/9 bars: with the whole pipeline on the node the
    // sustainable rate is CPU-bound, so the platform ordering is the CPU
    // ordering: TinyOS < JavaME < iPhone < VoxNet < Scheme — and the N80
    // is only a small multiple of the TMote despite a 55x clock.
    let (app, prof) = profiled_app();
    let cpu_rate = |p: &Platform| -> f64 {
        let total: f64 = app
            .stages
            .iter()
            .map(|&(_, id)| prof.cpu_fraction(id, p))
            .sum();
        1.0 / total
    };
    let mote = cpu_rate(&Platform::tmote_sky());
    let n80 = cpu_rate(&Platform::nokia_n80());
    let iphone = cpu_rate(&Platform::iphone());
    let voxnet = cpu_rate(&Platform::voxnet());
    let scheme = cpu_rate(&Platform::scheme_server());
    assert!(
        mote < n80 && n80 < iphone && iphone < voxnet && voxnet < scheme,
        "ordering: {mote:.3} {n80:.3} {iphone:.3} {voxnet:.3} {scheme:.3}"
    );
    let speedup = n80 / mote;
    assert!(
        (1.5..8.0).contains(&speedup),
        "N80 only ~2x the mote despite 55x clock, got {speedup:.1}"
    );
}

#[test]
fn meraki_ships_raw_data() {
    // §7.3: "for the Meraki the optimal partitioning falls at cut point 1:
    // send the raw data directly back to the server." The paper sets the
    // four numbers (C, N, α, β) *per platform*; for a WiFi-class radio the
    // energy proxy weights CPU against the (cheap, abundant) radio:
    // normalize each term by its budget so α·cpu + β·net compares
    // fractions of each resource.
    let (app, prof) = profiled_app();
    let meraki = Platform::meraki_mini();
    let mut cfg = PartitionConfig::for_platform(&meraki);
    cfg.alpha = 1.0 / cfg.cpu_budget;
    cfg.beta = 1.0 / cfg.net_budget;
    let part = partition(&app.graph, &prof, &meraki, &cfg).expect("meraki fits at full rate");
    assert_eq!(part.node_op_count(), 1, "only the source stays on the node");
    assert!(part.node_ops.contains(&app.source));

    // Cross-check with the deployment simulator: shipping raw over WiFi
    // delivers essentially everything at the full 8 kHz rate.
    let elems = app.trace_elements(200, 31);
    let dcfg = SimulationConfig {
        duration_s: 10.0,
        task_model: TaskModel::threaded(),
        per_packet_cpu_s: 50e-6,
        ..SimulationConfig::motes(1, 41)
    };
    let rep = simulate_deployment(
        &app.graph,
        &part.node_ops,
        app.source,
        &elems,
        40.0,
        &meraki,
        ChannelParams::wifi(meraki.radio.goodput_bytes_per_sec),
        &dcfg,
    );
    assert!(
        rep.goodput_ratio() > 0.9,
        "WiFi swallows the raw stream: {rep:?}"
    );
}
