//! End-to-end integration for the EEG application: the paper's large-graph
//! stress case (§7.1) plus functional seizure detection through the
//! deployment simulator.

use wishbone::prelude::*;

#[test]
fn full_eeg_app_partitions_in_reasonable_time() {
    // §7.1: "partitioning all 22-channels (1412 operators)"; our build is
    // the same order of magnitude. §1: "our implementation can partition
    // dataflow graphs containing over a thousand operators in a few
    // seconds".
    let mut app = build_eeg_app(EegParams::default());
    assert!(app.graph.operator_count() > 1000);
    let traces = app.traces(6, 2..4, 3);
    let prof = profile(&mut app.graph, &traces).unwrap();

    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote).at_rate(1.0);
    let start = std::time::Instant::now();
    let part = partition(&app.graph, &prof, &mote, &cfg).expect("feasible at reference rate");
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 60.0,
        "kilooperator graph should partition in seconds, took {elapsed:?}"
    );
    // Preprocessing must shrink the ILP substantially (§4.1). With the
    // sound single-out-edge merge rule the reduction is ~35% on this graph
    // (the FIR chains collapse; fan-out splitters cannot).
    assert!(
        part.merge_stats.1 * 4 < part.merge_stats.0 * 3,
        "merge: {} -> {}",
        part.merge_stats.0,
        part.merge_stats.1
    );
    // Sources always stay on the node.
    for s in &app.sources {
        assert!(part.node_ops.contains(s));
    }
}

#[test]
fn node_partition_shrinks_with_rate() {
    // Fig 5a: "As we increased the data rate, fewer operators can fit
    // within the CPU bounds on the node."
    let mut app = build_eeg_channel();
    let traces = app.traces(6, 2..4, 7);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let mote = Platform::tmote_sky();
    let mut counts = Vec::new();
    for mult in [0.5, 2.0, 8.0, 32.0] {
        let cfg = PartitionConfig::for_platform(&mote).at_rate(mult);
        let n = match partition(&app.graph, &prof, &mote, &cfg) {
            Ok(p) => p.node_op_count(),
            Err(PartitionError::Infeasible) => 0,
            Err(e) => panic!("{e}"),
        };
        counts.push(n);
    }
    for w in counts.windows(2) {
        assert!(w[1] <= w[0], "node ops must not grow with rate: {counts:?}");
    }
    assert!(
        counts[0] > counts[3],
        "sweep must show real movement: {counts:?}"
    );
}

#[test]
fn conservative_mode_keeps_stateful_ops_on_the_node() {
    let mut app = build_eeg_channel();
    let traces = app.traces(6, 2..4, 11);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let mote = Platform::tmote_sky();

    // Permissive at a high rate: the FIRs (stateful) may move server-side.
    let mut cfg = PartitionConfig::for_platform(&mote).at_rate(16.0);
    cfg.mode = Mode::Permissive;
    let permissive = partition(&app.graph, &prof, &mote, &cfg);

    let mut ccfg = PartitionConfig::for_platform(&mote).at_rate(16.0);
    ccfg.mode = Mode::Conservative;
    let conservative = partition(&app.graph, &prof, &mote, &ccfg);

    match (permissive, conservative) {
        (Ok(p), Ok(c)) => {
            // Conservative can never place fewer ops on the node than the
            // pinning forces; permissive has strictly more freedom.
            assert!(c.node_op_count() >= p.node_op_count());
        }
        (Ok(_), Err(PartitionError::Infeasible)) => {
            // Also a valid outcome: pinning everything stateful on-node
            // blows the CPU budget at 16x rate.
        }
        (p, c) => panic!("unexpected outcomes: {p:?} / {c:?}"),
    }
}

#[test]
fn seizure_detected_through_partitioned_deployment() {
    // Functional check end-to-end *through the simulated deployment*: all
    // channels feed one node; features cross the cut; SVM + declare run
    // wherever the partitioner put them.
    let mut app = build_eeg_app(EegParams {
        n_channels: 4,
        ..Default::default()
    });
    let traces = app.traces(16, 8..14, 13);
    let prof = profile(&mut app.graph, &traces).unwrap();

    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote).at_rate(1.0);
    let part = partition(&app.graph, &prof, &mote, &cfg).expect("EEG fits at 0.5 windows/s");

    // Rebuild a fresh app (the profiler consumed operator state) and drive
    // all four channel sources through the multi-source deployment.
    let app2 = build_eeg_app(EegParams {
        n_channels: 4,
        ..Default::default()
    });
    let feeds: Vec<SourceFeed> = app2
        .traces(16, 8..14, 13)
        .into_iter()
        .map(|t| SourceFeed {
            source: t.source,
            trace: t.elements,
            rate_hz: t.rate_hz,
        })
        .collect();
    let dcfg = SimulationConfig {
        duration_s: 32.0, // 16 windows at 0.5 windows/s
        ..SimulationConfig::motes(1, 3)
    };
    let rep = simulate_deployment_multi(
        &app2.graph,
        &part.node_ops,
        &feeds,
        &mote,
        ChannelParams::mote(),
        &dcfg,
    );
    assert!(
        rep.input_processed_ratio() > 0.9,
        "EEG at reference rate flows: {rep:?}"
    );
    assert!(
        rep.goodput_ratio() > 0.5,
        "features cross the network: {rep:?}"
    );
    assert!(rep.sink_arrivals >= 8, "declare verdicts reach the sink");
}

#[test]
fn eeg_features_fit_even_where_raw_eeg_would_not() {
    // The whole point of in-network processing: 22 channels of raw EEG
    // (22 x 512 B / 2 s ≈ 5.6 KB/s + headers) saturate a mote radio, but
    // the 66-feature vector is tiny.
    let mut app = build_eeg_app(EegParams::default());
    let traces = app.traces(6, 2..4, 17);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let mote = Platform::tmote_sky();

    let pg = build_partition_graph(&app.graph, &prof, &mote, Mode::Permissive, 1.0).unwrap();
    let obj = ObjectiveConfig::bandwidth_only(1.0, mote.radio.goodput_bytes_per_sec);
    let raw = evaluate(&pg, &all_server(&pg), &obj);
    let processed = evaluate(&pg, &all_node(&pg), &obj);
    assert!(
        raw.net > 3.0 * processed.net,
        "feature extraction reduces bandwidth: raw {} vs features {}",
        raw.net,
        processed.net
    );
}
