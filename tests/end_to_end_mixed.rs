//! End-to-end coverage for the two example scenarios that previously had
//! no test: the §9 mixed-network deployment (`examples/mixed_network.rs`)
//! and the §7.3 overload pipeline (`examples/overload_deployment.rs`).
//! Locking their semantics here means a solver swap (dense tableau →
//! sparse revised simplex) cannot silently change what the examples
//! print.

use wishbone::core::{partition_mixed, NodeClass};
use wishbone::prelude::*;

fn speech_profiled() -> (SpeechApp, GraphProfile) {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(120, 7);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");
    (app, prof)
}

#[test]
fn mixed_network_two_classes_semantics() {
    // The examples/mixed_network.rs scenario: 16 slowed TMotes + 4
    // Gumstix microservers running one logical speech program.
    let (app, prof) = speech_profiled();
    let mote = Platform::tmote_sky();
    let gumstix = Platform::gumstix();
    let classes = vec![
        NodeClass {
            config: PartitionConfig::for_platform(&mote)
                .with_measured_overheads(&mote)
                .at_rate(0.1),
            platform: mote.clone(),
            count: 16,
        },
        NodeClass {
            config: PartitionConfig::for_platform(&gumstix),
            platform: gumstix.clone(),
            count: 4,
        },
    ];
    let mixed = partition_mixed(&app.graph, &prof, &classes).expect("both classes partition");

    assert_eq!(mixed.classes.len(), 2);
    let mote_part = &mixed.classes[0].partition;
    let gum_part = &mixed.classes[1].partition;

    // Each class keeps the pinned source on the node and respects its own
    // budgets at its own rate.
    assert!(mote_part.node_ops.contains(&app.source));
    assert!(gum_part.node_ops.contains(&app.source));
    assert!(
        mote_part.predicted_cpu <= 1.0 + 1e-9,
        "mote cpu {}",
        mote_part.predicted_cpu
    );
    // The microserver class runs the full 8 kHz and has CPU to spare, so
    // it carries at least as much of the pipeline as the slowed motes.
    assert!(
        gum_part.node_op_count() >= mote_part.node_op_count(),
        "gumstix {} ops vs mote {} ops",
        gum_part.node_op_count(),
        mote_part.node_op_count()
    );

    // "The server would need to be engineered to deal with receiving
    // results ... at various stages of partial processing": the entry
    // edges are exactly the union of the per-class cut edges, and the
    // server-side union covers every operator some class leaves off-node.
    for c in &mixed.classes {
        for e in &c.partition.cut_edges {
            assert!(
                mixed.server_entry_edges.contains(e),
                "cut edge missing from server entry set"
            );
        }
    }
    let union = mixed.server_side_union(&app.graph);
    for id in app.graph.operator_ids() {
        let off_node_somewhere = mixed
            .classes
            .iter()
            .any(|c| !c.partition.node_ops.contains(&id));
        assert_eq!(union.contains(&id), off_node_somewhere);
    }

    // Aggregate offered load = Σ count · per-node net.
    let expect: f64 = mixed
        .classes
        .iter()
        .map(|c| c.partition.predicted_net * c.count as f64)
        .sum();
    assert!((mixed.total_predicted_net() - expect).abs() < 1e-9);
}

#[test]
fn overload_deployment_recommendation_matches_simulation() {
    // The examples/overload_deployment.rs pipeline: profile the network
    // (§7.3.1), binary-search the maximum sustainable rate with the
    // measured budget (§4.3), then validate the recommended cut against
    // a ground-truth deployment simulation of every cutpoint (Figs 9–10).
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(120, 3);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");
    let mote = Platform::tmote_sky();

    let channel = ChannelParams::mote();
    let netprof = profile_network(channel, 1, 28, 0.90, 99);
    assert!(
        netprof.max_aggregate_payload_rate > 0.0,
        "network profile must find a usable rate"
    );

    let mut cfg = PartitionConfig::for_platform(&mote);
    cfg.net_budget = netprof.max_aggregate_payload_rate;
    let result = max_sustainable_rate(&app.graph, &prof, &mote, &cfg, 8.0, 0.01)
        .expect("solver ok")
        .expect("feasible at low rate");
    assert!(
        result.rate > 0.0 && result.rate < 8.0,
        "sustainable rate {} must be an interior point",
        result.rate
    );
    // The recommendation is an intermediate cut: real on-node work, and
    // the predicted load fits both measured budgets.
    assert!(result.partition.node_op_count() >= 1);
    assert!(result.partition.predicted_cpu <= cfg.cpu_budget + 1e-9);
    assert!(result.partition.predicted_net <= cfg.net_budget + 1e-9);

    // Ground truth: simulate the deployment at the recommended rate for
    // every cutpoint; the recommended cut must be competitive with the
    // empirical best (top-2, ≥70% of peak goodput — the same bar
    // end_to_end_speech.rs holds the derated recommendation to).
    let elems = app.trace_elements(200, 11);
    let mut goods: Vec<(String, f64, bool)> = Vec::new();
    for (name, node_set) in app.cutpoints() {
        let dcfg = SimulationConfig {
            duration_s: 20.0,
            rate_multiplier: result.rate,
            ..SimulationConfig::motes(1, 17)
        };
        let report = simulate_deployment(
            &app.graph, &node_set, app.source, &elems, 40.0, &mote, channel, &dcfg,
        );
        let is_recommended = node_set == result.partition.node_ops;
        goods.push((name.to_string(), report.goodput_ratio(), is_recommended));
    }
    let rec = goods
        .iter()
        .find(|(_, _, r)| *r)
        .expect("recommended cut is one of the pipeline cutpoints")
        .1;
    let mut sorted: Vec<f64> = goods.iter().map(|&(_, g, _)| g).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!(
        rec >= 0.70 * sorted[0],
        "recommended cut goodput {rec} vs empirical best {}",
        sorted[0]
    );
    assert!(
        rec >= sorted[1] - 1e-9,
        "recommendation must be a top-2 cut (got {rec}, second best {})",
        sorted[1]
    );
    assert!(rec > 0.05, "recommended cut must actually deliver data");
}

#[test]
fn overload_pipeline_is_backend_invariant() {
    // The §7.3 pipeline's outcome (rate and chosen cut) must not depend
    // on which simplex backend solved the partitioning ILPs.
    let (app, prof) = speech_profiled();
    let mote = Platform::tmote_sky();
    let channel = ChannelParams::mote();
    let netprof = profile_network(channel, 1, 28, 0.90, 99);
    let mut results = Vec::new();
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let mut cfg = PartitionConfig::for_platform(&mote);
        cfg.net_budget = netprof.max_aggregate_payload_rate;
        cfg.ilp.backend = backend;
        let r = max_sustainable_rate(&app.graph, &prof, &mote, &cfg, 8.0, 0.01)
            .expect("solver ok")
            .expect("feasible");
        results.push((r.rate, r.partition.node_ops.clone()));
    }
    let (dense_rate, dense_cut) = &results[0];
    let (sparse_rate, sparse_cut) = &results[1];
    assert!(
        (dense_rate - sparse_rate).abs() <= 0.02 * dense_rate,
        "dense rate {dense_rate} vs sparse rate {sparse_rate}"
    );
    assert_eq!(dense_cut, sparse_cut, "backends must pick the same cut");
}
