//! Property tests on the partitioner over random weighted DAGs: the ILP
//! must match exhaustive enumeration, never violate constraints, and the
//! §4.1 preprocessing must preserve optimality.

use proptest::prelude::*;
use std::collections::HashSet;

use wishbone::core::{
    all_server, encode, evaluate, exhaustive, greedy, preprocess, Encoding, ObjectiveConfig, PEdge,
    PVertex, PartitionGraph, Pin,
};
use wishbone::dataflow::OperatorId;
use wishbone::ilp::IlpOptions;

/// Random layered DAG: vertex 0 pinned Node, last pinned Server, edges only
/// forward (guaranteeing acyclicity and source/sink reachability).
fn pg_strategy() -> impl Strategy<Value = PartitionGraph> {
    (3usize..9).prop_flat_map(|n| {
        let cpus = prop::collection::vec(0.0f64..0.4, n);
        let edge_picks = prop::collection::vec(prop::bool::ANY, n * (n - 1) / 2);
        let bws = prop::collection::vec(1.0f64..100.0, n * (n - 1) / 2);
        (cpus, edge_picks, bws).prop_map(move |(cpus, picks, bws)| {
            let vertices: Vec<PVertex> = (0..n)
                .map(|i| PVertex {
                    ops: vec![OperatorId(i)],
                    cpu_cost: cpus[i],
                    pin: if i == 0 {
                        Pin::Node
                    } else if i == n - 1 {
                        Pin::Server
                    } else {
                        Pin::Movable
                    },
                })
                .collect();
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    // Always keep the chain i -> i+1 so the graph is
                    // connected; other forward edges are optional.
                    if j == i + 1 || picks[k] {
                        edges.push(PEdge {
                            src: i,
                            dst: j,
                            bandwidth: bws[k],
                            graph_edges: vec![],
                        });
                    }
                    k += 1;
                }
            }
            PartitionGraph { vertices, edges }
        })
    })
}

fn solve_ilp_set(pg: &PartitionGraph, obj: &ObjectiveConfig) -> Option<HashSet<usize>> {
    let ep = encode(pg, Encoding::Restricted, obj);
    ep.problem
        .solve_ilp(&IlpOptions::default())
        .ok()
        .map(|s| ep.decode(&s.values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ilp_matches_exhaustive(pg in pg_strategy(), budget in 0.1f64..1.0) {
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        let ilp = solve_ilp_set(&pg, &obj);
        let brute = exhaustive(&pg, &obj, 12);
        match (ilp, brute) {
            (None, None) => {}
            (Some(iset), Some((_bset, bm))) => {
                let im = evaluate(&pg, &iset, &obj);
                prop_assert!(im.feasible, "ILP returned infeasible set");
                prop_assert!((im.objective - bm.objective).abs() < 1e-6,
                    "ILP {} vs brute force {}", im.objective, bm.objective);
            }
            (a, b) => prop_assert!(false, "feasibility disagreement: ilp={:?} brute={:?}",
                a.is_some(), b.is_some()),
        }
    }

    #[test]
    fn ilp_never_worse_than_greedy(pg in pg_strategy(), budget in 0.1f64..1.0) {
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        if let Some(iset) = solve_ilp_set(&pg, &obj) {
            let gm = evaluate(&pg, &greedy(&pg, &obj), &obj);
            let im = evaluate(&pg, &iset, &obj);
            if gm.feasible {
                prop_assert!(im.objective <= gm.objective + 1e-6,
                    "ILP {} worse than greedy {}", im.objective, gm.objective);
            }
        }
    }

    #[test]
    fn ilp_respects_constraints(pg in pg_strategy(), budget in 0.05f64..1.0) {
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        if let Some(set) = solve_ilp_set(&pg, &obj) {
            let m = evaluate(&pg, &set, &obj);
            prop_assert!(m.cpu <= budget + 1e-6, "cpu {} over budget {}", m.cpu, budget);
            prop_assert!(!pg.crosses_back(&set), "single-crossing violated");
            // Pins respected.
            for (v, vert) in pg.vertices.iter().enumerate() {
                match vert.pin {
                    Pin::Node => prop_assert!(set.contains(&v)),
                    Pin::Server => prop_assert!(!set.contains(&v)),
                    Pin::Movable => {}
                }
            }
        }
    }

    #[test]
    fn preprocess_preserves_optimum(pg in pg_strategy(), budget in 0.2f64..1.0) {
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        let merged = match preprocess(&pg) {
            Ok(r) => r,
            Err(_) => return Ok(()), // pin conflict from forced merges: skip
        };
        prop_assert!(merged.vertices_after <= merged.vertices_before);
        let before = solve_ilp_set(&pg, &obj).map(|s| evaluate(&pg, &s, &obj).objective);
        let after = solve_ilp_set(&merged.graph, &obj)
            .map(|s| evaluate(&merged.graph, &s, &obj).objective);
        match (before, after) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() < 1e-6,
                "preprocessing changed the optimum: {} -> {}", a, b),
            (None, None) => {}
            // Merging pinned-adjacent expanding ops can only *lose*
            // solutions if a merge glued a movable op to a pinned side that
            // the budget can't afford; §4.1's argument assumes the movable
            // op was never going to sit on the frontier anyway, so a
            // feasibility flip indicates the merged instance is infeasible
            // in both. Disallow one-sided feasibility:
            (a, b) => prop_assert!(false,
                "feasibility flipped under preprocessing: {:?} -> {:?}", a, b),
        }
    }

    #[test]
    fn general_encoding_agrees_with_restricted(pg in pg_strategy(), budget in 0.2f64..1.0) {
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        let r = solve_ilp_set(&pg, &obj).map(|s| evaluate(&pg, &s, &obj).objective);
        let ep = encode(&pg, Encoding::General, &obj);
        let g = ep.problem.solve_ilp(&IlpOptions::default()).ok().map(|s| {
            evaluate(&pg, &ep.decode(&s.values), &obj).objective
        });
        // On a source->sink oriented DAG the general encoding can only
        // match or beat the restricted one; with our pinned
        // frontier it should match exactly.
        if let (Some(ro), Some(go)) = (r, g) {
            prop_assert!(go <= ro + 1e-6, "general {} worse than restricted {}", go, ro);
        }
    }

    #[test]
    fn endpoints_bound_the_optimum(pg in pg_strategy()) {
        // With an unconstrained budget the ILP is at least as good as both
        // trivial endpoint partitions.
        let obj = ObjectiveConfig::bandwidth_only(10.0, 1e9);
        if let Some(iset) = solve_ilp_set(&pg, &obj) {
            let im = evaluate(&pg, &iset, &obj);
            let an = evaluate(&pg, &wishbone::core::all_node(&pg), &obj);
            let asrv = evaluate(&pg, &all_server(&pg), &obj);
            prop_assert!(im.objective <= an.objective + 1e-6);
            prop_assert!(im.objective <= asrv.objective + 1e-6);
        }
    }
}
