//! Facade smoke test: both paper applications build, profile, and
//! partition for a TMote Sky purely through `wishbone::prelude`, and the
//! resulting partitions satisfy the invariants every deployment relies on:
//! the CPU budget is respected and sources stay on the node side.

use wishbone::prelude::*;

#[test]
fn speech_app_partitions_on_tmote_sky() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(60, 17);
    let prof = profile(&mut app.graph, &[trace]).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    // Full 8 kHz exceeds a TMote (§7.2); an eighth of the rate fits.
    let cfg = PartitionConfig::for_platform(&mote).at_rate(0.125);
    let part = partition(&app.graph, &prof, &mote, &cfg).expect("feasible at 1/8 rate");

    assert!(
        part.predicted_cpu <= 1.0,
        "predicted CPU {} exceeds the whole-processor budget",
        part.predicted_cpu
    );
    assert!(
        part.node_ops.contains(&app.source),
        "speech source must be pinned to the node partition"
    );
}

#[test]
fn eeg_app_partitions_on_tmote_sky() {
    let mut app = build_eeg_app(EegParams::default());
    let traces = app.traces(4, 1..3, 23);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote).at_rate(1.0);
    let part = partition(&app.graph, &prof, &mote, &cfg).expect("feasible at reference rate");

    assert!(
        part.predicted_cpu <= 1.0,
        "predicted CPU {} exceeds the whole-processor budget",
        part.predicted_cpu
    );
    for src in &app.sources {
        assert!(
            part.node_ops.contains(src),
            "EEG source {src} must be pinned to the node partition"
        );
    }
}
