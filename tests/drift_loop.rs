//! The drift loop end to end: a [`LiveProfile`] fed samples consistent
//! with the solved-against [`GraphProfile`] never flags drift (property
//! test over in-band jitter); a mid-stream 2× cost inflation is caught
//! and names exactly the inflated operator; and a flagged drift maps
//! through [`drift_to_deltas`] onto the standing encoding's in-place
//! rescale path — the warm re-solve finishes with `encodes() == 1`.

use proptest::prelude::*;
use wishbone::dataflow::EdgeId;
use wishbone::prelude::*;

/// The profiled 2-channel EEG app plus the platform drift is judged on.
fn eeg_fixture() -> (wishbone::dataflow::Graph, GraphProfile, Platform) {
    let mut app = build_eeg_app(EegParams {
        n_channels: 2,
        ..Default::default()
    });
    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");
    (app.graph, prof, Platform::tmote_sky())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Samples drawn from the solved-against profile — per-operator
    /// costs and per-edge wire bytes, each within ±10% jitter, well
    /// inside the default ±50% band — must never flag drift, however
    /// the jitter lands. EWMAs of in-band samples stay in-band (convex
    /// combinations), so a false positive here is a detector bug.
    #[test]
    fn in_band_samples_never_flag_drift(jitter in prop::collection::vec(0.9f64..1.1, 256)) {
        let (_graph, prof, mote) = eeg_fixture();
        let mut live = LiveProfile::new(0.3);
        let mut k = 0;
        let mut draw = || {
            let j = jitter[k % jitter.len()];
            k += 1;
            j
        };
        for op in 0..prof.operator_count() {
            let expected = prof.seconds_per_invocation(OperatorId(op), &mote);
            for _ in 0..12 {
                live.observe(&TraceEvent::OperatorCost {
                    site: 3,
                    op: OperatorId(op),
                    cpu_s: expected * draw(),
                });
            }
        }
        for edge in 0..prof.edge_count() {
            let expected = prof.mean_element_bytes(EdgeId(edge));
            for _ in 0..12 {
                live.observe(&TraceEvent::EdgeElement {
                    site: 3,
                    edge: EdgeId(edge),
                    wire_bytes: (expected * draw()).round() as usize,
                    delivered: true,
                });
            }
        }
        let detector = DriftDetector::new(&prof, &mote, DriftConfig::default());
        let report = detector.detect(&live);
        prop_assert!(report.is_clean(), "false positive: {report}");
    }
}

/// One operator's cost doubles mid-stream; the detector flags exactly
/// that operator — nothing else, no edge drift — before the stream ends
/// (the victim's EWMA crosses the band after a handful of inflated
/// samples; `min_samples` was already met during the clean prefix).
#[test]
fn two_x_inflation_flags_exactly_the_inflated_operator() {
    let (_graph, prof, mote) = eeg_fixture();
    let victim = (0..prof.operator_count())
        .map(OperatorId)
        .max_by(|&a, &b| {
            prof.seconds_per_invocation(a, &mote)
                .total_cmp(&prof.seconds_per_invocation(b, &mote))
        })
        .expect("the app has operators");

    let mut live = LiveProfile::new(0.5);
    // Clean prefix: every operator at its profiled cost, enough samples
    // to clear the detector's min_samples gate.
    for op in 0..prof.operator_count() {
        let expected = prof.seconds_per_invocation(OperatorId(op), &mote);
        for _ in 0..8 {
            live.observe(&TraceEvent::OperatorCost {
                site: 3,
                op: OperatorId(op),
                cpu_s: expected,
            });
        }
    }
    for edge in 0..prof.edge_count() {
        let expected = prof.mean_element_bytes(EdgeId(edge));
        for _ in 0..8 {
            live.observe(&TraceEvent::EdgeElement {
                site: 3,
                edge: EdgeId(edge),
                wire_bytes: expected.round() as usize,
                delivered: true,
            });
        }
    }
    let detector = DriftDetector::new(&prof, &mote, DriftConfig::default());
    assert!(detector.detect(&live).is_clean(), "clean prefix flags");

    // Mid-stream inflation: the victim starts costing 2×. With
    // alpha = 0.5 the EWMA ratio reaches 1.75 after two inflated
    // samples — past the 1.5 band edge while the stream is still going.
    let expected = prof.seconds_per_invocation(victim, &mote);
    for _ in 0..4 {
        live.observe(&TraceEvent::OperatorCost {
            site: 3,
            op: victim,
            cpu_s: 2.0 * expected,
        });
    }
    let report = detector.detect(&live);
    assert!(!report.is_clean());
    assert_eq!(report.operators.len(), 1, "only the victim: {report}");
    assert_eq!(report.operators[0].op, victim);
    assert!(report.operators[0].ratio > 1.5);
    assert!(report.edges.is_empty(), "no edge drift was injected");
}

/// Acceptance pin: on the 2-channel × 4-cap forest, a flagged 2× drift
/// maps to `SetCpuBudget` deltas, the standing encoding absorbs them in
/// place, and the warm re-solve completes — with `encodes() == 1` (the
/// ILP was never re-encoded) and a second `solves()` tick.
#[test]
fn drift_triggers_warm_resolve_without_reencode() {
    let (graph, prof, _mote) = eeg_fixture();
    let mote = Platform::tmote_sky();
    let phone = Platform::iphone();
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    let gw_a = dep.attach(
        root,
        Site::new("gw-a", &phone),
        LinkSpec {
            beta: 1.0,
            net_budget: 1e9,
        },
    );
    let gw_b = dep.attach(
        root,
        Site::new("gw-b", &phone),
        LinkSpec {
            beta: 1.0,
            net_budget: 1e9,
        },
    );
    let ward_uplink = LinkSpec {
        beta: 1.0,
        net_budget: 4.0 * mote.radio.goodput_bytes_per_sec,
    };
    dep.attach(gw_a, Site::new("ward-a", &mote).with_count(4), ward_uplink);
    dep.attach(gw_b, Site::new("ward-b", &mote).with_count(4), ward_uplink);

    let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &DeploymentConfig::default())
        .expect("encoding succeeds");
    let base = prep.solve_at(0.25).expect("baseline solve succeeds");
    assert_eq!(prep.encodes(), 1);
    assert_eq!(prep.solves(), 1);

    // A leaf-pinned operator (sources live on the motes), chosen
    // deterministically; its site has a finite CPU budget, so the drift
    // maps to a budget rewrite rather than being skipped.
    let victim = base.leaves[0].site_ops[0]
        .iter()
        .copied()
        .min()
        .expect("the leaf hosts its sources");
    let expected = prof.seconds_per_invocation(victim, &mote);
    let report = DriftReport {
        operators: vec![OperatorDrift {
            op: victim,
            expected_s: expected,
            observed_s: 2.0 * expected,
            ratio: 2.0,
        }],
        edges: vec![],
    };
    let deltas = drift_to_deltas(&report, &dep, &base);
    assert!(!deltas.is_empty(), "finite-budget drift must map to deltas");
    assert!(deltas
        .iter()
        .all(|d| matches!(d, DeploymentDelta::SetCpuBudget { .. })));

    prep.apply_delta(&deltas);
    let resolved = prep.solve_at(0.25).expect("warm re-solve succeeds");

    // In-place rescale, no re-encode; the tighter budget can only make
    // the objective worse (or leave it unchanged).
    assert_eq!(prep.encodes(), 1, "drift re-solve must not re-encode");
    assert_eq!(prep.solves(), 2);
    assert!(resolved.objective >= base.objective - 1e-9);
}
