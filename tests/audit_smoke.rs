//! Auditor smoke over the repo's flagship instances (ISSUE 6, CI gate):
//! the fig6-scale 22-channel EEG chain and the two-ward forest
//! deployment must audit with **zero errors**, on both simplex
//! backends, before and after solving (rate re-targeting rewrites
//! budget right-hand sides in place — the structure must survive it).

use wishbone::ilp::SolverBackend;
use wishbone::prelude::*;

/// The fig6 instance: 22-channel EEG on telos → phone → server. An
/// unoptimized build solves the dense 972-constraint instance in
/// minutes, so debug runs audit a reduced montage; the CI gate runs
/// this test `--release` at full fig6 scale.
#[test]
fn fig6_multitier_audits_clean_on_both_backends() {
    let params = if cfg!(debug_assertions) {
        EegParams {
            n_channels: 6,
            ..Default::default()
        }
    } else {
        EegParams::default()
    };
    let mut app = build_eeg_app(params);
    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");
    let chain = [
        Platform::tmote_sky(),
        Platform::iphone(),
        Platform::server(),
    ];
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let mut cfg = MultiTierConfig::for_chain(&chain);
        cfg.ilp.backend = backend;
        cfg.ilp.rel_gap = 0.025;
        cfg.ilp.time_limit = Some(std::time::Duration::from_secs(5));
        let mut prep =
            PreparedMultiTier::new(&app.graph, &prof, &cfg).expect("pin analysis succeeds");
        let report = prep.audit();
        assert!(
            !report.has_errors(),
            "{backend:?}: fig6 encoding rejected:\n{report}"
        );
        // Re-targeting the rate rewrites budget rhs in place; the
        // audited structure must be invariant under it.
        let _ = prep.solve_at(0.25);
        let report = prep.audit();
        assert!(
            !report.has_errors(),
            "{backend:?}: fig6 encoding rejected after a solve:\n{report}"
        );
    }
}

/// The forest instance: two wards of EEG caps behind asymmetric
/// gateway backhauls (the `forest_eeg` example's topology at a lighter
/// montage so the debug-build profile stays fast).
#[test]
fn forest_deployment_audits_clean_on_both_backends() {
    let mut app = build_eeg_app(EegParams {
        n_channels: if cfg!(debug_assertions) { 2 } else { 4 },
        ..Default::default()
    });
    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    let relay = Platform::iphone();
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    let gw_a = dep.attach(
        root,
        Site::new("gw-a", &relay),
        LinkSpec {
            beta: 1.0,
            net_budget: 100.0,
        },
    );
    let gw_b = dep.attach(
        root,
        Site::new("gw-b", &relay),
        LinkSpec {
            beta: 1.0,
            net_budget: 400_000.0,
        },
    );
    let cap_uplink = LinkSpec {
        beta: 1.0,
        net_budget: 1_200.0,
    };
    dep.attach(gw_a, Site::new("ward-a", &mote).with_count(20), cap_uplink);
    dep.attach(gw_b, Site::new("ward-b", &mote).with_count(20), cap_uplink);

    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let mut cfg = DeploymentConfig::default();
        cfg.ilp.backend = backend;
        cfg.ilp.rel_gap = 0.025;
        cfg.ilp.time_limit = Some(std::time::Duration::from_secs(5));
        let mut prep = PreparedDeployment::new(&app.graph, &prof, &dep, &cfg).expect("pins ok");
        let report = prep.audit();
        assert!(
            !report.has_errors(),
            "{backend:?}: forest encoding rejected:\n{report}"
        );
        let _ = prep.solve_at(0.25);
        let report = prep.audit();
        assert!(
            !report.has_errors(),
            "{backend:?}: forest encoding rejected after a solve:\n{report}"
        );
    }
}

/// The binary encodings behind `partition()` audit clean too, through
/// the prepared pipeline (restricted tree encoder and general DAG
/// encoder both).
#[test]
fn binary_prepared_partitions_audit_clean() {
    let mut app = build_eeg_app(EegParams {
        n_channels: 2,
        ..Default::default()
    });
    let traces = app.traces(8, 3..6, 5);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");
    let mote = Platform::tmote_sky();
    for encoding in [Encoding::Restricted, Encoding::General] {
        let mut cfg = PartitionConfig::for_platform(&mote).at_rate(0.25);
        cfg.encoding = encoding;
        let prep =
            PreparedPartition::new(&app.graph, &prof, &mote, &cfg).expect("pin analysis succeeds");
        let report = prep.audit();
        assert!(
            !report.has_errors(),
            "{encoding:?}: binary encoding rejected:\n{report}"
        );
    }
}
