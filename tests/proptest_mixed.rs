//! Property tests for `wishbone-core::mixed` (§9 mixed networks): every
//! class's physical partition must respect that class's budgets, and the
//! per-class server-side residual graphs must compose into a valid
//! whole-program execution order on the server.

use proptest::prelude::*;
use std::collections::HashSet;

use wishbone::core::{partition_mixed, NodeClass};
use wishbone::prelude::*;

/// A random reducing pipeline: `stages` transforms, each with a random
/// per-element loop cost and a reduction factor, node-namespaced so the
/// partitioner may cut anywhere.
fn random_app(stages: usize, costs: &[u64], keeps: &[usize]) -> (Graph, OperatorId) {
    let mut b = GraphBuilder::new();
    b.enter_node_namespace();
    let src = b.source("src");
    let mut prev = src;
    for s in 0..stages {
        let cost = costs[s];
        let keep = keeps[s].max(1);
        prev = b.transform(
            format!("stage{s}"),
            Box::new(wishbone::dataflow::FnWork(
                move |_p: usize, v: &Value, cx: &mut wishbone::dataflow::ExecCtx| {
                    let w = v.as_i16s().unwrap();
                    cx.meter().loop_scope(cost, |m| {
                        m.int(cost);
                        m.fadd(cost / 2);
                    });
                    cx.emit(Value::VecI16(w.iter().step_by(keep).copied().collect()));
                },
            )),
            prev,
        );
    }
    b.exit_namespace();
    b.sink("out", prev);
    (b.finish().unwrap(), src.0)
}

fn class_strategy() -> impl Strategy<Value = (f64, f64)> {
    // (cpu budget fraction, rate multiplier)
    (0.05f64..1.0, 0.02f64..0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn class_partitions_respect_budgets_and_compose(
        stages in 2usize..5,
        costs in prop::collection::vec(100u64..4000, 4),
        keeps in prop::collection::vec(1usize..5, 4),
        weak in class_strategy(),
        strong in class_strategy(),
    ) {
        let (mut g, src) = random_app(stages, &costs, &keeps);
        let trace = SourceTrace {
            source: src,
            elements: (0..10).map(|i| Value::VecI16(vec![i as i16; 128])).collect(),
            rate_hz: 20.0,
        };
        let prof = match profile(&mut g, &[trace]) {
            Ok(p) => p,
            Err(_) => return Ok(()), // degenerate trace: skip
        };

        let mote = Platform::tmote_sky();
        let gumstix = Platform::gumstix();
        let mk_class = |platform: &Platform, (budget, rate): (f64, f64), count| {
            let mut config = PartitionConfig::for_platform(platform).at_rate(rate);
            config.cpu_budget = budget;
            config.net_budget = 1e9;
            NodeClass { platform: platform.clone(), count, config }
        };
        let classes = vec![
            mk_class(&mote, weak, 10),
            mk_class(&gumstix, strong, 2),
        ];
        let mixed = match partition_mixed(&g, &prof, &classes) {
            Ok(m) => m,
            Err(_) => return Ok(()), // a class may genuinely not fit
        };

        let all_ops: HashSet<OperatorId> = g.operator_ids().collect();
        let mut cut_union: Vec<wishbone::dataflow::EdgeId> = Vec::new();
        for (class, cp) in classes.iter().zip(&mixed.classes) {
            let part = &cp.partition;
            // 1. The class budget holds at the class rate.
            prop_assert!(
                part.predicted_cpu <= class.config.cpu_budget + 1e-9,
                "{}: cpu {} over budget {}",
                cp.platform_name, part.predicted_cpu, class.config.cpu_budget
            );
            // 2. node ∪ server covers the program exactly once.
            let union: HashSet<OperatorId> =
                part.node_ops.union(&part.server_ops).copied().collect();
            prop_assert_eq!(&union, &all_ops);
            prop_assert!(part.node_ops.is_disjoint(&part.server_ops));
            // 3. Single crossing: no edge flows server → node, and the cut
            // edges are exactly the node → server frontier.
            let mut frontier = Vec::new();
            for eid in g.edge_ids() {
                let e = g.edge(eid);
                let src_on_node = part.node_ops.contains(&e.src);
                let dst_on_node = part.node_ops.contains(&e.dst);
                prop_assert!(src_on_node || !dst_on_node,
                    "{}: edge {:?} flows back into the network", cp.platform_name, eid);
                if src_on_node && !dst_on_node {
                    frontier.push(eid);
                }
            }
            prop_assert_eq!(&frontier, &part.cut_edges);
            cut_union.extend(frontier);
        }

        // 4. The server-side residuals compose: the union of server ops
        // closes under successors (a valid suffix of every topological
        // order), and every entry edge targets an op inside it.
        let server_union = mixed.server_side_union(&g);
        for eid in &mixed.server_entry_edges {
            let e = g.edge(*eid);
            prop_assert!(server_union.contains(&e.dst),
                "entry edge {:?} targets an op outside the server union", eid);
        }
        for cp in &mixed.classes {
            for id in g.operator_ids() {
                if !cp.partition.node_ops.contains(&id) {
                    // Everything any class leaves behind is in the union…
                    prop_assert!(server_union.contains(&id));
                    // …and its whole downstream cone is too (execution
                    // order exists: the union is successor-closed).
                    for d in g.descendants(id) {
                        prop_assert!(server_union.contains(&d),
                            "descendant {d} of server op {id} missing from server code");
                    }
                }
            }
        }
        // 5. The reported entry edges are exactly the deduplicated,
        // sorted union of all class cuts.
        cut_union.sort_unstable();
        cut_union.dedup();
        prop_assert_eq!(&cut_union, &mixed.server_entry_edges);
    }
}
