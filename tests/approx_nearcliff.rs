//! PR-8 near-cliff regression: the tight-gateway forest from the PR-5
//! asymmetric-backhaul sweep, solved at a rate just under its
//! feasibility cliff. Before the multilevel heuristic landed, exact
//! branch-and-bound *starved* here — the LP relaxation stays fractional
//! on the saturated gateway's uplink row, plunging keeps producing
//! infeasible roundings, and the search could run out its budget with
//! no incumbent, which `max_sustainable_rate_deployment` then misread
//! as "infeasible".
//!
//! The anchors:
//!
//! * seeded exact search (`seed_incumbent`, the default) discovers its
//!   first incumbent in well under a second — the heuristic's cut is
//!   adopted as the incumbent before node one;
//! * `partition_approx` returns an integer-feasible placement whose
//!   certified optimality gap (vs the root LP bound) is ≤ 2.5%, and
//!   whose *actual* gap vs the exact optimum is within the certificate,
//!   on both simplex backends;
//! * random tree deployments (proptest): every `partition_approx`
//!   placement respects all budgets and its certificate, and it never
//!   claims feasibility where the exact solver proves there is none.

use std::time::Duration;

use proptest::prelude::*;

use wishbone::core::{partition_approx, PlacementEngine};
use wishbone::ilp::SolverBackend;
use wishbone::prelude::*;

/// The profiled EEG app of the bench forest.
fn eeg_profiled(channels: usize) -> (wishbone::dataflow::Graph, GraphProfile) {
    let mut app = build_eeg_app(EegParams {
        n_channels: channels,
        ..Default::default()
    });
    let traces = app.traces(4, 1..3, 7);
    let prof = profile(&mut app.graph, &traces).expect("profiling succeeds");
    (app.graph, prof)
}

/// The PR-5 two-ward forest: `count_{a,b}` motes per ward behind two
/// gateways, gw-a's backhaul (optionally) starved, gw-b's roomy.
/// Sites: 0 = server, 1 = gw-a, 2 = gw-b, 3 = ward-a, 4 = ward-b.
fn forest(
    count_a: usize,
    count_b: usize,
    backhaul_a: f64,
    backhaul_b: f64,
    gw_budget_a: f64,
) -> Deployment {
    let mote = Platform::tmote_sky();
    let phone = Platform::iphone();
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    let gw_a = dep.attach(
        root,
        Site::new("gw-a", &phone).with_cpu_budget(gw_budget_a),
        LinkSpec {
            beta: 1.0,
            net_budget: backhaul_a,
        },
    );
    let gw_b = dep.attach(
        root,
        Site::new("gw-b", &phone),
        LinkSpec {
            beta: 1.0,
            net_budget: backhaul_b,
        },
    );
    let uplink = |count: usize| LinkSpec {
        beta: 1.0,
        net_budget: count as f64 * mote.radio.goodput_bytes_per_sec,
    };
    dep.attach(
        gw_a,
        Site::new("ward-a", &mote).with_count(count_a),
        uplink(count_a),
    );
    dep.attach(
        gw_b,
        Site::new("ward-b", &mote).with_count(count_b),
        uplink(count_b),
    );
    dep
}

/// The calibrated near-cliff instance: 4-channel EEG, two 4-mote wards,
/// gw-a's backhaul starved to 500 B/s.
fn tight_forest() -> (wishbone::dataflow::Graph, GraphProfile, Deployment) {
    let (graph, prof) = eeg_profiled(4);
    let dep = forest(4, 4, 500.0, 400_000.0, f64::INFINITY);
    (graph, prof, dep)
}

/// Rate multiplier just under the tight forest's feasibility cliff
/// (calibrated by `probe_cliff` below: the cliff sits at x3.1614).
const NEAR_CLIFF_RATE: f64 = 3.15;

/// Near-cliff rate for the harder 8-channel ward (cliff at x3.6102,
/// per `probe_cliff`): LP-feasible, but an unseeded search needs
/// hundreds of nodes to stumble on its first integer point.
const STARVED_RATE: f64 = 3.5;

/// Manual calibration probe — run with
/// `cargo test -q probe_cliff -- --ignored --nocapture` when re-tuning
/// the instance; not part of the suite.
#[test]
#[ignore = "calibration probe, not a regression test"]
fn probe_cliff() {
    let mut cfg = DeploymentConfig {
        seed_incumbent: false,
        ..Default::default()
    };
    // Cap each unseeded probe so a starving search reads as Unproven
    // instead of hanging the calibration.
    cfg.ilp.time_limit = Some(Duration::from_secs(5));
    for (channels, count_a, count_b, bk_a, bk_b, gw_budget) in [
        (
            4usize,
            4usize,
            4usize,
            500.0f64,
            400_000.0f64,
            f64::INFINITY,
        ),
        (4, 4, 4, 500.0, 2_000.0, f64::INFINITY),
        (4, 4, 4, 500.0, 2_000.0, 0.3),
        (4, 8, 2, 500.0, 1_000.0, 0.2),
        (8, 4, 4, 800.0, 1_500.0, 0.25),
        (4, 4, 4, 300.0, 900.0, 0.15),
    ] {
        let (graph, prof) = eeg_profiled(channels);
        let dep = forest(count_a, count_b, bk_a, bk_b, gw_budget);
        let mut prep = match PreparedDeployment::new(&graph, &prof, &dep, &cfg) {
            Ok(p) => p,
            Err(e) => {
                println!("ch{channels} {count_a}x{count_b} bk({bk_a},{bk_b}) gw{gw_budget}: {e}");
                continue;
            }
        };
        let mut lo = 0.05f64;
        let mut hi = 64.0f64;
        if prep.solve_at(lo).is_err() {
            println!("ch{channels} {count_a}x{count_b} bk({bk_a},{bk_b}) gw{gw_budget}: dead");
            continue;
        }
        while hi / lo > 1.005 {
            let mid = (lo * hi).sqrt();
            match prep.solve_at(mid) {
                Ok(_) => lo = mid,
                Err(_) => hi = mid,
            }
        }
        let unseeded_cliff = lo;
        // Seeded bisection: below the cliff the heuristic hands
        // branch-and-bound an incumbent; above it no cut exists, so the
        // probe still needs the cap to step over the Unproven band.
        let mut seeded_cfg = DeploymentConfig::default();
        seeded_cfg.ilp.time_limit = Some(Duration::from_secs(5));
        let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &seeded_cfg).expect("pins ok");
        let mut lo = 0.05f64;
        let mut hi = 64.0f64;
        while hi / lo > 1.005 {
            let mid = (lo * hi).sqrt();
            match prep.solve_at(mid) {
                Ok(_) => lo = mid,
                Err(_) => hi = mid,
            }
        }
        println!(
            "ch{channels} {count_a}x{count_b} bk({bk_a},{bk_b}) gw{gw_budget}: \
             unseeded-solvable up to x{unseeded_cliff:.4}, true cliff x{lo:.4}"
        );
        // Inside the band: cold unseeded (5s cap) vs cold seeded.
        for rate in [unseeded_cliff * 1.005, (unseeded_cliff * lo).sqrt(), lo] {
            if rate > lo {
                continue;
            }
            let mut cold = PreparedDeployment::new(&graph, &prof, &dep, &cfg).expect("pins ok");
            let t = std::time::Instant::now();
            let r = cold.solve_at(rate);
            let unseeded = match &r {
                Ok(p) => format!(
                    "ok ({} nodes, first {:?})",
                    p.ilp_stats.nodes,
                    p.ilp_stats.incumbents.first().map(|i| i.0)
                ),
                Err(e) => format!("{e}"),
            };
            let unseeded_t = t.elapsed();
            let mut warm =
                PreparedDeployment::new(&graph, &prof, &dep, &seeded_cfg).expect("pins ok");
            let t = std::time::Instant::now();
            let r = warm.solve_at(rate);
            let seeded = match &r {
                Ok(p) => format!(
                    "ok (seeded {}, first {:?})",
                    p.ilp_stats.seeded,
                    p.ilp_stats.incumbents.first().map(|i| i.0)
                ),
                Err(e) => format!("{e}"),
            };
            println!(
                "  x{rate:.4}: unseeded {unseeded} in {unseeded_t:?}; seeded {seeded} in {:?}",
                t.elapsed()
            );
        }
    }
}

/// Second manual probe: map the Unproven band (LP-feasible,
/// IP-infeasible or undiscoverable) just above the cliff.
#[test]
#[ignore = "calibration probe, not a regression test"]
fn probe_unproven_band() {
    let (graph, prof) = eeg_profiled(8);
    let dep = forest(4, 4, 800.0, 1_500.0, 0.25);
    for rate in [3.4, 3.5, 3.6] {
        let mut cfg = DeploymentConfig {
            seed_incumbent: false,
            ..Default::default()
        };
        cfg.ilp.max_nodes = 20;
        let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &cfg).expect("pins ok");
        let t = std::time::Instant::now();
        let verdict = match prep.solve_at(rate) {
            Ok(p) => format!("ok obj {} ({} nodes)", p.objective, p.ilp_stats.nodes),
            Err(e) => format!("{e}"),
        };
        println!("unseeded/20-node x{rate}: {verdict} in {:?}", t.elapsed());
        let mut cfg = DeploymentConfig::default();
        cfg.ilp.rel_gap = 0.025;
        cfg.ilp.max_nodes = 2_000;
        let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &cfg).expect("pins ok");
        let t = std::time::Instant::now();
        let verdict = match prep.solve_at(rate) {
            Ok(p) => format!(
                "ok obj {} (seeded {}, timed_out {}, nodes {}, first {:?})",
                p.objective,
                p.ilp_stats.seeded,
                p.ilp_stats.timed_out,
                p.ilp_stats.nodes,
                p.ilp_stats.incumbents.first().map(|i| i.0)
            ),
            Err(e) => format!("{e}"),
        };
        println!("seeded/2.5%-gap x{rate}: {verdict} in {:?}", t.elapsed());
    }
}

#[test]
fn seeded_search_finds_an_incumbent_fast_near_the_cliff() {
    let (graph, prof, dep) = tight_forest();
    let cfg = DeploymentConfig::default();
    assert!(cfg.seed_incumbent, "seeding is the default");
    let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &cfg).expect("pins ok");
    let part = prep
        .solve_at(NEAR_CLIFF_RATE)
        .expect("feasible just under the cliff");
    assert!(
        part.ilp_stats.seeded,
        "the multilevel cut must be adopted as the initial incumbent"
    );
    let (first_at, _) = *part
        .ilp_stats
        .incumbents
        .first()
        .expect("a solved instance records its incumbents");
    assert!(
        first_at < Duration::from_secs(1),
        "first incumbent took {first_at:?}; the near-cliff starvation is back"
    );
}

#[test]
fn approx_certificate_holds_near_the_cliff_on_both_backends() {
    let (graph, prof, dep) = tight_forest();
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let mut cfg = DeploymentConfig::default().at_rate(NEAR_CLIFF_RATE);
        cfg.ilp.backend = backend;
        let exact =
            partition_deployment(&graph, &prof, &dep, &cfg).expect("feasible just under the cliff");
        let approx = partition_approx(&graph, &prof, &dep, &cfg).expect("heuristic placement");
        let gap = approx
            .certified_gap
            .expect("approx placements carry a certificate");
        assert!(
            gap <= 0.025,
            "[{backend:?}] certified gap {gap} exceeds the 2.5% acceptance bar"
        );
        // The certificate must be honest: the true distance from the
        // exact optimum is within the certified bound.
        let true_gap =
            (approx.objective - exact.objective) / approx.objective.abs().max(f64::EPSILON);
        assert!(
            true_gap <= gap + 1e-9,
            "[{backend:?}] true gap {true_gap} exceeds certificate {gap}"
        );
        assert!(
            approx.objective >= exact.objective - 1e-9 * (1.0 + exact.objective.abs()),
            "[{backend:?}] heuristic {} beat the exact optimum {}",
            approx.objective,
            exact.objective
        );
        // Feasibility of the emitted placement, at the budget-row level.
        for s in dep.site_ids() {
            if let Some(l) = dep.uplink(s) {
                if l.net_budget.is_finite() {
                    assert!(
                        approx.link_net[s.0] <= l.net_budget + 1e-6,
                        "[{backend:?}] site {} over uplink budget",
                        dep.site(s).name
                    );
                }
            }
        }
    }
}

#[test]
fn starved_probe_past_the_cliff_reports_unproven_not_infeasible() {
    let (graph, prof) = eeg_profiled(8);
    let dep = forest(4, 4, 800.0, 1_500.0, 0.25);

    // Unseeded with a 20-node budget: enough for a root-LP
    // infeasibility proof (one solve, zero nodes), nowhere near the
    // hundreds of nodes the starving search needs for its first
    // incumbent — pre-PR-8 this outcome was indistinguishable from
    // `Infeasible`.
    let mut cfg = DeploymentConfig {
        seed_incumbent: false,
        ..Default::default()
    };
    cfg.ilp.max_nodes = 20;
    let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &cfg).expect("pins ok");
    match prep.solve_at(STARVED_RATE) {
        Err(PartitionError::Unproven { best_bound }) => {
            let bound = best_bound.expect("an unproven verdict carries the root LP bound");
            assert!(bound.is_finite());
        }
        other => panic!(
            "a starved near-cliff probe must surface as Unproven, got {:?}",
            other.map(|p| p.objective)
        ),
    }

    // The multilevel seed rescues the very same instance under an even
    // tighter budget: with seeding on, 50 nodes is plenty to return a
    // placement (the proof phase is cut short — `timed_out` stays
    // honest about that — but the incumbent is there from millisecond
    // one).
    let mut cfg = DeploymentConfig::default();
    cfg.ilp.max_nodes = 50;
    let mut prep = PreparedDeployment::new(&graph, &prof, &dep, &cfg).expect("pins ok");
    let part = prep.solve_at(STARVED_RATE).expect("seeded solve succeeds");
    assert!(part.ilp_stats.seeded, "incumbent came from the seed");
}

#[test]
fn approx_config_builder_sets_the_engine() {
    let cfg = DeploymentConfig::default().approx();
    assert_eq!(cfg.engine, PlacementEngine::Approx);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random tree deployments: `partition_approx` placements respect
    /// every budget, never beat the exact optimum, and stay within
    /// their own certificate — on both backends.
    #[test]
    fn approx_respects_budgets_and_certificates_on_random_trees(
        channels in 1usize..3,
        counts in (1usize..5, 1usize..5),
        backhaul_a in 200.0f64..4000.0,
        gw_budget in 0.05f64..0.8,
        rate in 0.1f64..2.0,
    ) {
        let (count_a, count_b) = counts;
        let (graph, prof) = eeg_profiled(channels);
        let dep = forest(count_a, count_b, backhaul_a, 400_000.0, gw_budget);
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut cfg = DeploymentConfig::default().at_rate(rate);
            cfg.ilp.backend = backend;
            let exact = partition_deployment(&graph, &prof, &dep, &cfg);
            let approx = partition_approx(&graph, &prof, &dep, &cfg);
            match (exact, approx) {
                (Ok(e), Ok(a)) => {
                    let gap = a.certified_gap.expect("certificate present");
                    prop_assert!(gap >= 0.0);
                    let true_gap =
                        (a.objective - e.objective) / a.objective.abs().max(f64::EPSILON);
                    prop_assert!(
                        true_gap <= gap + 1e-9,
                        "{:?}: true gap {} exceeds certificate {}", backend, true_gap, gap
                    );
                    for s in dep.site_ids() {
                        let site = dep.site(s);
                        if site.cpu_budget.is_finite() {
                            prop_assert!(
                                a.site_cpu[s.0] <= site.cpu_budget + 1e-6,
                                "{:?}: site {} over CPU budget", backend, site.name
                            );
                        }
                        if let Some(l) = dep.uplink(s) {
                            if l.net_budget.is_finite() {
                                prop_assert!(
                                    a.link_net[s.0] <= l.net_budget + 1e-6,
                                    "{:?}: site {} over uplink budget", backend, site.name
                                );
                            }
                        }
                    }
                }
                // The heuristic is incomplete: it may fail to find a cut
                // on a feasible instance (reported as Unproven, never as
                // a silent Infeasible). It must not claim feasibility
                // the exact solver refutes.
                (Ok(_), Err(PartitionError::Unproven { .. })) => {}
                (Err(_), Err(_)) => {}
                (e, a) => prop_assert!(
                    false,
                    "{:?}: exact {:?} vs approx {:?} disagree on feasibility",
                    backend, e.map(|p| p.objective), a.map(|p| p.objective)
                ),
            }
        }
    }
}
