//! End-to-end tests of the multi-tier subsystem.
//!
//! The correctness anchor is differential parity: for k = 2 the k-way
//! monotone-cut partitioner must return the same operator assignment,
//! objective, and verdict as the binary `partition()` on the apps-crate
//! graphs, on both simplex backends (the same way the dense tableau
//! anchored the sparse revised simplex in PR 3). On top of that, 3-tier
//! chains are checked for structural invariants and wired through the
//! tiered deployment simulator.

use wishbone::core::MultiTierConfig;
use wishbone::prelude::*;

fn parity_on(
    graph: &Graph,
    prof: &GraphProfile,
    node_platform: &Platform,
    rates: &[f64],
    backend: SolverBackend,
) {
    for &rate in rates {
        let mut cfg = PartitionConfig::for_platform(node_platform).at_rate(rate);
        cfg.ilp.backend = backend;
        let mt_cfg = MultiTierConfig::binary(&cfg, node_platform);
        let binary = partition(graph, prof, node_platform, &cfg);
        let tiered = partition_multitier(graph, prof, &mt_cfg);
        match (binary, tiered) {
            (Ok(b), Ok(t)) => {
                assert_eq!(
                    b.node_ops, t.tier_ops[0],
                    "node assignment diverged at rate {rate} on {backend:?}"
                );
                assert_eq!(b.server_ops, t.tier_ops[1]);
                assert_eq!(b.cut_edges, t.link_cut_edges[0]);
                assert!(
                    (b.objective - t.objective).abs() < 1e-9 * (1.0 + b.objective.abs()),
                    "objective diverged at rate {rate}: {} vs {}",
                    b.objective,
                    t.objective
                );
                assert_eq!(
                    b.problem_size, t.problem_size,
                    "the k=2 encoding must be the binary encoding, row for row"
                );
                assert_eq!(b.ilp_stats.backend, t.ilp_stats.backend);
            }
            (Err(b), Err(t)) => {
                assert_eq!(b, t, "verdicts diverged at rate {rate} on {backend:?}")
            }
            (b, t) => panic!("rate {rate} {backend:?}: binary {b:?} vs multitier {t:?}"),
        }
    }
}

#[test]
fn speech_k2_parity_both_backends() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(40, 42);
    let prof = profile(&mut app.graph, &[trace]).unwrap();
    let mote = Platform::tmote_sky();
    // 0.125 fits a prefix on the mote; 4.0 is hopeless (pinned source
    // alone overruns): both Ok and Err verdicts must agree.
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        parity_on(&app.graph, &prof, &mote, &[0.125, 0.5, 4.0], backend);
    }
}

#[test]
fn eeg_k2_parity_both_backends() {
    let mut app = build_eeg_channel();
    let traces = app.traces(6, 2..4, 9);
    let prof = profile(&mut app.graph, &traces).unwrap();
    for platform in [Platform::tmote_sky(), Platform::nokia_n80()] {
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            parity_on(&app.graph, &prof, &platform, &[0.25, 1.0], backend);
        }
    }
}

#[test]
fn eeg_three_tier_structure_and_rate_dominance() {
    let mut app = build_eeg_app(EegParams {
        n_channels: 4,
        ..Default::default()
    });
    let traces = app.traces(6, 2..4, 13);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let mote = Platform::tmote_sky();
    let chain = [mote.clone(), Platform::iphone(), Platform::server()];

    let cfg3 = MultiTierConfig::for_chain(&chain);
    let part = partition_multitier(&app.graph, &prof, &cfg3.clone().at_rate(0.5))
        .expect("3-tier feasible at half rate");
    assert_eq!(part.k(), 3);
    // Tier order is monotone along every dataflow edge.
    for eid in app.graph.edge_ids() {
        let e = app.graph.edge(eid);
        assert!(part.tier_of(e.src).unwrap() <= part.tier_of(e.dst).unwrap());
    }
    // Sources sit on the motes, the sink on the server.
    for &src in &app.sources {
        assert_eq!(part.tier_of(src), Some(0));
    }
    assert_eq!(part.tier_of(app.sink), Some(2));
    // Budgets hold on every constrained tier and link.
    for (t, spec) in cfg3.tiers.iter().enumerate() {
        if spec.cpu_budget.is_finite() {
            assert!(part.predicted_cpu[t] <= spec.cpu_budget * 0.5 + 1e-9);
        }
    }
    for (b, link) in cfg3.links.iter().enumerate() {
        assert!(part.predicted_net[b] <= link.net_budget * 0.5 + 1e-9);
    }

    // Adding a relay can only help: the 3-tier max sustainable rate is at
    // least the binary mote→server rate (a 2-tier solution embeds as a
    // 3-tier one with an empty phone tier; the phone's WiFi uplink dwarfs
    // the mote radio, so pass-through always fits).
    let two = max_sustainable_rate_multitier(
        &app.graph,
        &prof,
        &MultiTierConfig::for_chain(&[mote, Platform::server()]),
        32.0,
        0.02,
    )
    .unwrap()
    .expect("2-tier feasible");
    let three = max_sustainable_rate_multitier(&app.graph, &prof, &cfg3, 32.0, 0.02)
        .unwrap()
        .expect("3-tier feasible");
    assert!(
        three.rate >= two.rate * (1.0 - 0.05),
        "3-tier rate {} must not trail 2-tier rate {}",
        three.rate,
        two.rate
    );
    assert_eq!(three.encodes, 1, "one encode for the whole search");
}

#[test]
fn tiered_deployment_simulates_goodput_across_both_hops() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(40, 7);
    let prof = profile(&mut app.graph, std::slice::from_ref(&trace)).unwrap();
    let chain = [
        Platform::tmote_sky(),
        Platform::gumstix(),
        Platform::server(),
    ];
    let rate = 0.125;
    let part = partition_multitier(
        &app.graph,
        &prof,
        &MultiTierConfig::for_chain(&chain).at_rate(rate),
    )
    .expect("feasible at 1/8 rate");

    let cfg = SimulationConfig {
        duration_s: 5.0,
        rate_multiplier: rate,
        ..SimulationConfig::motes(2, 3)
    };
    let feeds = vec![SourceFeed {
        source: app.source,
        trace: trace.elements.clone(),
        rate_hz: trace.rate_hz,
    }];
    let r = simulate_tiered_deployment(
        &app.graph,
        &part.tier_ops,
        &feeds,
        &chain,
        &[ChannelParams::mote(), ChannelParams::wifi(400_000.0)],
        &cfg,
    );
    assert!(r.events_offered > 0);
    assert!(
        r.input_processed_ratio() > 0.9,
        "partitioned rate must be sustainable: {}",
        r.input_processed_ratio()
    );
    // Both hops were exercised and neither collapsed: the partitioner's
    // per-link budgets kept each offered load under its channel capacity.
    assert!(r.hop_elements_sent[0] > 0);
    assert!(r.hop_elements_sent[1] > 0);
    assert!(r.hop_offered_load_bytes_per_sec[0] <= ChannelParams::mote().capacity_bytes_per_sec);
    assert!(r.hop_offered_load_bytes_per_sec[1] <= 400_000.0);
    assert!(r.goodput_ratio() > 0.5, "goodput {}", r.goodput_ratio());
    assert_eq!(r.sink_arrivals, r.hop_elements_delivered[1]);
}

#[test]
fn mixed_classes_still_compose_with_multitier_chains() {
    // The §9 mixed-network path (one binary ILP per class) and the
    // multitier path answer different questions about the same program;
    // on a single-class network they must agree with each other through
    // the k = 2 anchor.
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(40, 21);
    let prof = profile(&mut app.graph, &[trace]).unwrap();
    let gumstix = Platform::gumstix();
    let cfg = PartitionConfig::for_platform(&gumstix);
    let mixed = wishbone::core::partition_mixed(
        &app.graph,
        &prof,
        &[wishbone::core::NodeClass {
            platform: gumstix.clone(),
            count: 4,
            config: cfg.clone(),
        }],
    )
    .unwrap();
    let tiered =
        partition_multitier(&app.graph, &prof, &MultiTierConfig::binary(&cfg, &gumstix)).unwrap();
    assert_eq!(mixed.classes[0].partition.node_ops, tiered.tier_ops[0]);
    assert_eq!(mixed.server_entry_edges, tiered.link_cut_edges[0]);
}
