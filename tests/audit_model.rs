//! Property and mutation tests for the static model auditor (ISSUE 6).
//!
//! Two directions, both required for the auditor to be trustworthy:
//!
//! * **No false positives** — over random binary (restricted *and*
//!   general), multi-tier, and forest-deployment encodings, the auditor
//!   must return zero `Error`-severity diagnostics. (The encoders also
//!   self-audit under `debug_assertions`, so the whole suite doubles as
//!   a corpus; these tests make the contract explicit and keep it alive
//!   in release runs.)
//! * **No false negatives** — seeded corruptions of a healthy encoding
//!   (a dropped monotonicity row, a sign-flipped uplink coefficient, a
//!   duplicated uplink budget row) must each be flagged with `Error`
//!   severity and the specific diagnostic code.

use proptest::prelude::*;

use wishbone::audit::audit_model;
use wishbone::core::{
    audit_binary, audit_deployment, audit_multitier, deployment_spec, encode, encode_deployment,
    encode_multitier, DeploymentObjective, EncodedDeployment, EncodedMultiTier, Encoding,
    LeafChain, ObjectiveConfig, PEdge, PVertex, PartitionGraph, Pin, TierObjective, TieredGraph,
};
use wishbone::dataflow::OperatorId;
use wishbone::prelude::AuditCode;

/// Random layered DAG: vertex 0 pinned Node, last pinned Server, edges
/// only forward (same shape as `proptest_deployment`).
fn pg_strategy() -> impl Strategy<Value = PartitionGraph> {
    (3usize..9).prop_flat_map(|n| {
        let cpus = prop::collection::vec(0.0f64..0.4, n);
        let edge_picks = prop::collection::vec(prop::bool::ANY, n * (n - 1) / 2);
        let bws = prop::collection::vec(1.0f64..100.0, n * (n - 1) / 2);
        (cpus, edge_picks, bws).prop_map(move |(cpus, picks, bws)| {
            let vertices: Vec<PVertex> = (0..n)
                .map(|i| PVertex {
                    ops: vec![OperatorId(i)],
                    cpu_cost: cpus[i],
                    pin: if i == 0 {
                        Pin::Node
                    } else if i == n - 1 {
                        Pin::Server
                    } else {
                        Pin::Movable
                    },
                })
                .collect();
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if j == i + 1 || picks[k] {
                        edges.push(PEdge {
                            src: i,
                            dst: j,
                            bandwidth: bws[k],
                            graph_edges: vec![],
                        });
                    }
                    k += 1;
                }
            }
            PartitionGraph { vertices, edges }
        })
    })
}

/// Lift a binary graph into a 3-tier one (gateway at 1/8 cost, both
/// hops the same bandwidth), as in `proptest_multitier`.
fn lift_k3(pg: &PartitionGraph) -> TieredGraph {
    let mut tg = TieredGraph::from_binary(pg);
    tg.tiers = 3;
    for v in &mut tg.vertices {
        let mote = v.cpu_cost[0];
        v.cpu_cost = vec![mote, mote / 8.0, 0.0];
    }
    for e in &mut tg.edges {
        let bw = e.bandwidth[0];
        e.bandwidth = vec![bw, bw];
    }
    tg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both binary encoders produce models the auditor accepts, for
    /// finite and infinite (row-omitting) budgets alike. Warnings (e.g.
    /// a provably infeasible budget) are allowed; errors are not.
    #[test]
    fn binary_encodings_audit_clean(
        pg in pg_strategy(),
        budget in 0.05f64..1.0,
        net_pick in 1e2f64..2e4,
    ) {
        let net = if net_pick > 1e4 { f64::INFINITY } else { net_pick };
        for enc in [Encoding::Restricted, Encoding::General] {
            let ep = encode(&pg, enc, &ObjectiveConfig::bandwidth_only(budget, net));
            let report = audit_binary(&ep);
            prop_assert!(!report.has_errors(), "{:?} rejected:\n{}", enc, report);
        }
    }

    /// The multi-tier encoder produces models the auditor accepts.
    #[test]
    fn multitier_encoding_audits_clean(
        pg in pg_strategy(),
        mote_budget in 0.05f64..0.8,
        relay_pick in 0.01f64..0.25,
        link_pick in 1e2f64..2e4,
    ) {
        let tg = lift_k3(&pg);
        let relay = if relay_pick > 0.2 { f64::INFINITY } else { relay_pick };
        let link = if link_pick > 1e4 { f64::INFINITY } else { link_pick };
        let ep = encode_multitier(
            &tg,
            &TierObjective::bandwidth_only(
                vec![mote_budget, relay, f64::INFINITY],
                vec![link, 1e9],
            ),
        );
        let report = audit_multitier(&ep);
        prop_assert!(!report.has_errors(), "multitier rejected:\n{}", report);
    }

    /// A two-leaf forest (two mote classes behind one gateway) produces
    /// a model the auditor accepts: multi-block indicator specs, shared
    /// interior budget rows and all.
    #[test]
    fn forest_deployment_audits_clean(
        pg_a in pg_strategy(),
        pg_b in pg_strategy(),
        budgets in ((0.05f64..0.8), (0.01f64..0.5)),
        links in ((1e2f64..2e4), (1e2f64..1e4)),
        count_a in 1.0f64..6.0,
    ) {
        let (mote_budget, relay) = budgets;
        let (uplink_pick, leaf_link) = links;
        let uplink = if uplink_pick > 1e4 { f64::INFINITY } else { uplink_pick };
        let tg_a = lift_k3(&pg_a);
        let tg_b = lift_k3(&pg_b);
        // Sites: 0 = server, 1 = gateway, 2 = leaf class A, 3 = leaf
        // class B; row order is depth-descending, index-ascending.
        let ep = encode_deployment(
            &[
                LeafChain { graph: &tg_a, path: vec![2, 1, 0], count: count_a },
                LeafChain { graph: &tg_b, path: vec![3, 1, 0], count: 1.0 },
            ],
            &DeploymentObjective {
                alpha: vec![0.0; 4],
                cpu_budget: vec![f64::INFINITY, relay, mote_budget, mote_budget],
                count: vec![1.0, 1.0, count_a, 1.0],
                beta: vec![0.0, 1.0, 1.0, 1.0],
                net_budget: vec![f64::INFINITY, uplink, leaf_link, leaf_link],
                row_order: vec![2, 3, 1, 0],
            },
        );
        let report = audit_deployment(&ep);
        prop_assert!(!report.has_errors(), "deployment rejected:\n{}", report);
    }
}

/// Fixed 5-vertex chain with distinct costs and bandwidths — the
/// deterministic substrate for the mutation tests below.
fn chain_pg() -> PartitionGraph {
    let cpu = [0.05, 0.12, 0.08, 0.2, 0.0];
    let bw = [96.0, 64.0, 24.0, 8.0];
    let vertices = (0..5)
        .map(|i| PVertex {
            ops: vec![OperatorId(i)],
            cpu_cost: cpu[i],
            pin: if i == 0 {
                Pin::Node
            } else if i == 4 {
                Pin::Server
            } else {
                Pin::Movable
            },
        })
        .collect();
    let edges = (0..4)
        .map(|i| PEdge {
            src: i,
            dst: i + 1,
            bandwidth: bw[i],
            graph_edges: vec![],
        })
        .collect();
    PartitionGraph { vertices, edges }
}

fn fixed_multitier() -> EncodedMultiTier {
    encode_multitier(
        &lift_k3(&chain_pg()),
        &TierObjective::bandwidth_only(vec![0.5, 0.25, f64::INFINITY], vec![500.0, 200.0]),
    )
}

fn fixed_forest() -> EncodedDeployment {
    let tg = lift_k3(&chain_pg());
    encode_deployment(
        &[
            LeafChain {
                graph: &tg,
                path: vec![2, 1, 0],
                count: 4.0,
            },
            LeafChain {
                graph: &tg,
                path: vec![3, 1, 0],
                count: 2.0,
            },
        ],
        &DeploymentObjective {
            alpha: vec![0.0; 4],
            cpu_budget: vec![f64::INFINITY, 0.3, 0.5, 0.6],
            count: vec![1.0, 1.0, 4.0, 2.0],
            beta: vec![0.0, 1.0, 1.0, 1.0],
            net_budget: vec![f64::INFINITY, 800.0, 300.0, 300.0],
            row_order: vec![2, 3, 1, 0],
        },
    )
}

/// Row index of the monotonicity row tying vertex `v`'s two boundary
/// indicators together (the 2-term row over `y[0][v]` and `y[1][v]`).
fn monotonicity_row(ep: &EncodedMultiTier, v: usize) -> usize {
    let (a, b) = (ep.y_vars[0][v], ep.y_vars[1][v]);
    (0..ep.problem.num_constraints())
        .find(|&i| {
            let c = ep.problem.constraint(i);
            c.terms.len() == 2
                && c.terms.iter().any(|t| t.0 == a)
                && c.terms.iter().any(|t| t.0 == b)
        })
        .expect("k = 3 encoding must carry a monotonicity row per vertex")
}

/// Corruption (a): overwrite a monotonicity row with a (well-formed)
/// precedence-shaped row. The per-vertex indicator staircase is now
/// broken, and the auditor must say exactly that.
#[test]
fn dropped_monotonicity_row_is_flagged() {
    let mut ep = fixed_multitier();
    assert!(
        !audit_multitier(&ep).has_errors(),
        "pristine encoding must audit clean"
    );
    let row = monotonicity_row(&ep, 0);
    // Same-boundary 2-term row: classifies as precedence, so the ONLY
    // defect left for the auditor to find is the missing staircase.
    let sense = ep.problem.constraint(row).sense;
    ep.problem.replace_constraint(
        row,
        &[(ep.y_vars[0][0], 1.0), (ep.y_vars[0][1], -1.0)],
        sense,
        0.0,
    );
    let report = audit_multitier(&ep);
    assert!(
        report
            .errors()
            .any(|d| d.code == AuditCode::MissingMonotonicityRow),
        "expected a MissingMonotonicityRow error, got:\n{report}"
    );
}

/// Corruption (b): flip the sign of one coefficient in the mote uplink
/// budget row. The telescoping sum no longer cancels, which the
/// conservation check must catch.
#[test]
fn sign_flipped_uplink_coefficient_is_flagged() {
    let mut ep = fixed_multitier();
    assert!(!audit_multitier(&ep).has_errors());
    let row = ep.net_rows[0].expect("finite link budget emits a row");
    let c = ep.problem.constraint(row).clone();
    let mut terms = c.terms;
    terms[0].1 = -terms[0].1;
    ep.problem.replace_constraint(row, &terms, c.sense, c.rhs);
    let report = audit_multitier(&ep);
    assert!(
        report
            .errors()
            .any(|d| d.code == AuditCode::UnbalancedUplinkRow),
        "expected an UnbalancedUplinkRow error, got:\n{report}"
    );
}

/// Corruption (c): append a verbatim copy of an uplink budget row. A
/// duplicated budget row double-counts nothing today but silently
/// shadows future rhs rewrites (rate re-targeting edits one row by
/// index), so the auditor treats it as an error.
#[test]
fn duplicated_uplink_row_is_flagged() {
    let mut ep = fixed_forest();
    assert!(
        !audit_deployment(&ep).has_errors(),
        "pristine forest must audit clean"
    );
    let row = ep.net_rows[1].expect("gateway uplink row");
    let c = ep.problem.constraint(row).clone();
    ep.problem.add_constraint(&c.terms, c.sense, c.rhs);
    let report = audit_deployment(&ep);
    assert!(
        report.errors().any(|d| d.code == AuditCode::DuplicateRow),
        "expected a DuplicateRow error, got:\n{report}"
    );
}

/// A fourth corruption beyond the required three: turning a site CPU
/// budget row from `≤` into `≥` (the classic flipped-inequality bug)
/// must be rejected as a malformed budget row.
#[test]
fn flipped_cpu_budget_sense_is_flagged() {
    let mut ep = fixed_forest();
    let row = ep.cpu_rows[2].as_ref().expect("leaf cpu row").row;
    let c = ep.problem.constraint(row).clone();
    ep.problem
        .replace_constraint(row, &c.terms, wishbone::ilp::Sense::Ge, c.rhs);
    let report = audit_deployment(&ep);
    assert!(
        report.errors().any(|d| d.code == AuditCode::BadBudgetRow),
        "expected a BadBudgetRow error, got:\n{report}"
    );
}

/// Corruption (e): silently re-pricing a single-failure-robust forest
/// at full device count. The robust objective prices the shared
/// 3-device gateway's CPU and uplink rows as if one device were
/// already gone (`count − 1`, uplink budget scaled by `2/3`). Pin
/// those rows, rescale the encoding in place with the nominal
/// full-count objective — a well-formed model in its own right — and
/// the auditor must still flag every re-priced budget row as drifted
/// from the encoder's declared intent.
#[test]
fn robust_rows_repriced_at_full_count_drift_from_the_pinned_spec() {
    let tg = lift_k3(&chain_pg());
    let chains = [
        LeafChain {
            graph: &tg,
            path: vec![2, 1, 0],
            count: 4.0,
        },
        LeafChain {
            graph: &tg,
            path: vec![3, 1, 0],
            count: 2.0,
        },
    ];
    let nominal = DeploymentObjective {
        alpha: vec![0.0; 4],
        cpu_budget: vec![f64::INFINITY, 0.3, 0.5, 0.6],
        count: vec![1.0, 3.0, 4.0, 2.0],
        beta: vec![0.0, 1.0, 1.0, 1.0],
        net_budget: vec![f64::INFINITY, 800.0, 300.0, 300.0],
        row_order: vec![2, 3, 1, 0],
    };
    let mut robust = nominal.clone();
    robust.count[1] = 2.0;
    robust.net_budget[1] *= 2.0 / 3.0;

    let mut ep = encode_deployment(&chains, &robust);
    let pinned = deployment_spec(&ep);
    assert!(
        !audit_model(&ep.problem, &pinned).has_errors(),
        "pristine robust forest must audit clean against its own pins"
    );

    ep.rescale_in_place(&chains, &nominal);
    assert!(
        !audit_deployment(&ep).has_errors(),
        "nominal pricing is well-formed, so a fresh spec must accept it"
    );
    let report = audit_model(&ep.problem, &pinned);
    assert!(
        report.errors().any(|d| d.code == AuditCode::PinnedRowDrift),
        "expected PinnedRowDrift against the robust pins, got:\n{report}"
    );
}
