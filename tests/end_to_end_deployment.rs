//! End-to-end tests of the topology-first `Deployment` API on the
//! apps-crate graphs.
//!
//! Two anchors:
//!
//! 1. **Differential parity on real programs** — the prepared deployment
//!    ILP for a path topology is bit-for-bit `encode_multitier`'s ILP
//!    (and for a 2-site star, the binary restricted encoding), built
//!    through the *independent* oracle path
//!    (`build_partition_graph`/`build_tiered_graph` + merge + the chain
//!    encoders). This is what licenses `partition()` and
//!    `partition_multitier()` delegating to the deployment engine.
//! 2. **New capability** — a genuinely branching forest (two gateways
//!    with different uplink budgets) solves end to end, and the
//!    partitioner, the §4.3 rate search, and the tree simulator agree
//!    about *where* goodput collapses when one gateway saturates.

use wishbone::core::{
    build_partition_graph, build_tiered_graph, encode, encode_multitier, preprocess,
    preprocess_tiered, MultiTierConfig, TierObjective,
};
use wishbone::ilp::{Problem, VarId};
use wishbone::prelude::*;

fn assert_problems_identical(a: &Problem, b: &Problem, what: &str) {
    assert_eq!(a.num_vars(), b.num_vars(), "{what}: variable count");
    assert_eq!(a.num_constraints(), b.num_constraints(), "{what}: rows");
    for j in 0..a.num_vars() {
        let v = VarId(j);
        assert_eq!(
            a.objective_coeff(v).to_bits(),
            b.objective_coeff(v).to_bits(),
            "{what}: objective bits of var {j}"
        );
        assert_eq!(a.lower_bounds()[j].to_bits(), b.lower_bounds()[j].to_bits());
        assert_eq!(a.upper_bounds()[j].to_bits(), b.upper_bounds()[j].to_bits());
        assert_eq!(a.is_integer(v), b.is_integer(v));
    }
    for i in 0..a.num_constraints() {
        let (ca, cb) = (a.constraint(i), b.constraint(i));
        assert_eq!(ca.sense, cb.sense, "{what}: sense of row {i}");
        assert_eq!(
            ca.rhs.to_bits(),
            cb.rhs.to_bits(),
            "{what}: rhs bits of row {i}"
        );
        assert_eq!(ca.terms.len(), cb.terms.len(), "{what}: terms of row {i}");
        for (ta, tb) in ca.terms.iter().zip(&cb.terms) {
            assert_eq!(ta.0, tb.0, "{what}: term variable in row {i}");
            assert_eq!(
                ta.1.to_bits(),
                tb.1.to_bits(),
                "{what}: term bits in row {i}"
            );
        }
    }
}

#[test]
fn speech_two_site_star_is_the_binary_encoding() {
    let mut app = build_speech_app(SpeechParams::default());
    let trace = app.trace(40, 42);
    let prof = profile(&mut app.graph, &[trace]).unwrap();
    let mote = Platform::tmote_sky();
    let cfg = PartitionConfig::for_platform(&mote);

    // Oracle: the historical binary path, assembled by hand.
    let pg = build_partition_graph(&app.graph, &prof, &mote, cfg.mode, 1.0).unwrap();
    let merged = preprocess(&pg).unwrap().graph;
    let oracle = encode(
        &merged,
        Encoding::Restricted,
        &ObjectiveConfig {
            alpha: cfg.alpha,
            beta: cfg.beta,
            cpu_budget: cfg.cpu_budget,
            net_budget: cfg.net_budget,
        },
    );

    let dep = Deployment::binary(&cfg, &mote);
    let prep =
        PreparedDeployment::new(&app.graph, &prof, &dep, &DeploymentConfig::default()).unwrap();
    assert_problems_identical(&oracle.problem, prep.problem(), "speech 2-site");
}

#[test]
fn eeg_three_tier_path_is_the_multitier_encoding() {
    let mut app = build_eeg_app(EegParams {
        n_channels: 2,
        ..Default::default()
    });
    let traces = app.traces(6, 2..4, 13);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let chain = [
        Platform::tmote_sky(),
        Platform::iphone(),
        Platform::server(),
    ];
    let mt_cfg = MultiTierConfig::for_chain(&chain);

    // Oracle: the chain path, assembled by hand through the independent
    // multitier encoder.
    let obj: TierObjective = mt_cfg.objective();
    let tg = build_tiered_graph(&app.graph, &prof, &chain, mt_cfg.mode, 1.0).unwrap();
    let tg = preprocess_tiered(&tg, &obj).unwrap().graph;
    let oracle = encode_multitier(&tg, &obj);

    let dep = Deployment::from_multitier(&mt_cfg);
    let prep =
        PreparedDeployment::new(&app.graph, &prof, &dep, &DeploymentConfig::default()).unwrap();
    assert_problems_identical(&oracle.problem, prep.problem(), "eeg k=3 path");

    // And through the solver, on both backends, the deployment facade
    // (which partition_multitier now delegates to) must reproduce the
    // oracle's optimum.
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let opts = IlpOptions {
            backend,
            ..Default::default()
        };
        let oracle_sol = oracle.problem.solve_ilp(&opts).expect("feasible");
        let mut cfg = DeploymentConfig::default();
        cfg.ilp.backend = backend;
        let part = partition_deployment(&app.graph, &prof, &dep, &cfg).expect("feasible");
        assert!(
            (oracle_sol.objective - part.objective).abs()
                < 1e-9 * (1.0 + oracle_sol.objective.abs()),
            "{backend:?}: oracle {} vs deployment {}",
            oracle_sol.objective,
            part.objective
        );
    }
}

/// The acceptance instance: 2 gateways × 11 EEG channels each with
/// asymmetric uplinks. `partition_deployment`,
/// `max_sustainable_rate_deployment`, and `simulate_deployment_tree`
/// must agree that goodput collapses only on the saturated gateway's
/// subtree (the full-size version lives in `examples/forest_eeg.rs`).
#[test]
fn forest_goodput_collapses_only_on_the_saturated_subtree() {
    let mut app = build_eeg_app(EegParams {
        n_channels: 3,
        ..Default::default()
    });
    let traces = app.traces(6, 2..4, 29);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let mote = Platform::tmote_sky();
    let phone = Platform::iphone();

    // gw-a gets a starved uplink, gw-b a roomy one.
    let mk_forest = |uplink_a: f64, uplink_b: f64| {
        let mut dep = Deployment::new(Site::server("server", &Platform::server()));
        let root = dep.root();
        let gw_a = dep.attach(
            root,
            Site::new("gw-a", &phone),
            LinkSpec {
                beta: 1.0,
                net_budget: uplink_a,
            },
        );
        let gw_b = dep.attach(
            root,
            Site::new("gw-b", &phone),
            LinkSpec {
                beta: 1.0,
                net_budget: uplink_b,
            },
        );
        let uplink = LinkSpec {
            beta: 1.0,
            net_budget: mote.radio.goodput_bytes_per_sec,
        };
        let a = dep.attach(gw_a, Site::new("cap-a", &mote), uplink);
        let b = dep.attach(gw_b, Site::new("cap-b", &mote), uplink);
        (dep, a, b)
    };

    // 1. The partitioner respects each gateway's own uplink.
    let (dep, leaf_a, leaf_b) = mk_forest(40.0, 400_000.0);
    let cfg = DeploymentConfig::default();
    let r = max_sustainable_rate_deployment(&app.graph, &prof, &dep, &cfg, 16.0, 0.01)
        .expect("solver ok")
        .expect("feasible at low rates");
    let a = r.partition.leaf(leaf_a).unwrap();
    assert!(r.partition.leaf(leaf_b).is_some(), "both leaves placed");
    assert!(
        a.predicted_net[1] <= 40.0 + 1e-9,
        "gw-a uplink {} over its 40 B/s budget",
        a.predicted_net[1]
    );
    // The starved uplink is the binding constraint: the roomy sibling's
    // rate alone would be far higher.
    let (dep_roomy, _, _) = mk_forest(400_000.0, 400_000.0);
    let roomy = max_sustainable_rate_deployment(&app.graph, &prof, &dep_roomy, &cfg, 16.0, 0.01)
        .expect("solver ok")
        .expect("feasible");
    assert!(
        roomy.rate > r.rate * 1.5,
        "starved gw-a must cap the whole deployment: {} vs {}",
        roomy.rate,
        r.rate
    );

    // 2. Simulate the starved forest at the roomy deployment's rate:
    // only gw-a's subtree may collapse.
    let topo = TreeTopology {
        parent: vec![None, Some(0), Some(0), Some(1), Some(2)],
        platforms: vec![
            Platform::server(),
            phone.clone(),
            phone.clone(),
            mote.clone(),
            mote.clone(),
        ],
        counts: vec![1; 5],
        uplink: vec![
            None,
            Some(ChannelParams::wifi(40.0)),
            Some(ChannelParams::wifi(400_000.0)),
            Some(ChannelParams::mote()),
            Some(ChannelParams::mote()),
        ],
    };
    // Drive well past the starved deployment's sustainable rate (but
    // within what the roomy placement was computed for): gw-a's 40 B/s
    // backhaul must shed most of its subtree's stream.
    let sim_rate = (3.0 * r.rate).min(roomy.rate);
    // Drive both subtrees with the placement the *roomy* partition chose
    // (what a deployment engineer would ship before discovering gw-a's
    // backhaul is 40 B/s).
    let placement = &roomy.partition;
    let feeds: Vec<SourceFeed> = app
        .sources
        .iter()
        .zip(&traces)
        .map(|(&src, t)| SourceFeed {
            source: src,
            trace: t.elements.clone(),
            rate_hz: t.rate_hz,
        })
        .collect();
    let mk_route = |leaf: usize, part: &LeafPartition| LeafRoute {
        path: vec![leaf, leaf - 2, 0],
        site_ops: part.site_ops.clone(),
        feeds: feeds.clone(),
    };
    let sim = simulate_deployment_tree(
        &app.graph,
        &topo,
        &[
            mk_route(3, placement.leaf(leaf_a).unwrap()),
            mk_route(4, placement.leaf(leaf_b).unwrap()),
        ],
        &SimulationConfig {
            duration_s: 10.0,
            rate_multiplier: sim_rate,
            ..SimulationConfig::motes(1, 7)
        },
    );
    let (flow_a, flow_b) = (&sim.leaves[0], &sim.leaves[1]);
    assert!(
        // Baseline radio loss (5% per mote packet) costs the healthy
        // subtree a fixed fraction over two hops; what matters is that it
        // keeps flowing while its sibling collapses.
        flow_b.goodput_ratio() > 0.6,
        "the healthy subtree must keep its goodput: {}",
        flow_b.goodput_ratio()
    );
    assert!(
        flow_a.goodput_ratio() < 0.5 * flow_b.goodput_ratio(),
        "goodput must collapse on the saturated gateway's subtree only: a {} vs b {}",
        flow_a.goodput_ratio(),
        flow_b.goodput_ratio()
    );
    // The collapse is on gw-a's uplink hop, not inside the healthy tree.
    assert!(flow_a.hop_delivery_ratio(1) < 0.5);
    assert!(flow_b.hop_delivery_ratio(1) > 0.9);
}
