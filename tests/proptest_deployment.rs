//! Property tests for the topology-first `Deployment` encoding over
//! random DAGs and random tree shapes. The parity anchors (ISSUE 5
//! acceptance):
//!
//! * (a) a **path** deployment produces `encode_multitier`'s rows
//!   bit-for-bit (and a 2-site star produces the binary restricted
//!   encoding bit-for-bit) — the old encoders stay alive as independent
//!   oracles precisely so this comparison means something now that
//!   `partition()`/`partition_multitier()` delegate to the deployment
//!   path;
//! * (b) a **star** of heterogeneous leaf classes reproduces
//!   `partition_mixed`'s per-class partitions from one joint ILP;
//! * (c) on genuine **trees**, every per-gateway CPU and uplink budget
//!   holds at the returned placement, identically on both simplex
//!   backends.

use proptest::prelude::*;
use std::collections::HashSet;

use wishbone::core::{
    deltas_between, encode, encode_deployment, encode_multitier, partition_deployment,
    partition_mixed, shape_key, Deployment, DeploymentConfig, DeploymentDelta, DeploymentObjective,
    Encoding, LeafChain, LinkSpec, NodeClass, ObjectiveConfig, PEdge, PVertex, PartitionConfig,
    PartitionGraph, Pin, PreparedDeployment, Site, SiteId, TierObjective, TieredGraph,
};
use wishbone::dataflow::OperatorId;
use wishbone::ilp::{IlpOptions, Problem, SolverBackend, VarId};
use wishbone::prelude::{profile, GraphBuilder, Platform, SourceTrace, Value};

/// Random layered DAG: vertex 0 pinned Node, last pinned Server, edges
/// only forward (guaranteeing acyclicity and source/sink reachability).
fn pg_strategy() -> impl Strategy<Value = PartitionGraph> {
    (3usize..9).prop_flat_map(|n| {
        let cpus = prop::collection::vec(0.0f64..0.4, n);
        let edge_picks = prop::collection::vec(prop::bool::ANY, n * (n - 1) / 2);
        let bws = prop::collection::vec(1.0f64..100.0, n * (n - 1) / 2);
        (cpus, edge_picks, bws).prop_map(move |(cpus, picks, bws)| {
            let vertices: Vec<PVertex> = (0..n)
                .map(|i| PVertex {
                    ops: vec![OperatorId(i)],
                    cpu_cost: cpus[i],
                    pin: if i == 0 {
                        Pin::Node
                    } else if i == n - 1 {
                        Pin::Server
                    } else {
                        Pin::Movable
                    },
                })
                .collect();
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if j == i + 1 || picks[k] {
                        edges.push(PEdge {
                            src: i,
                            dst: j,
                            bandwidth: bws[k],
                            graph_edges: vec![],
                        });
                    }
                    k += 1;
                }
            }
            PartitionGraph { vertices, edges }
        })
    })
}

/// Bit-level problem identity: same variables (bounds, integrality,
/// objective bits), same rows (terms in order, sense, rhs bits).
fn assert_problems_identical(a: &Problem, b: &Problem) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_vars(), b.num_vars(), "variable count");
    prop_assert_eq!(a.num_constraints(), b.num_constraints(), "row count");
    for j in 0..a.num_vars() {
        let v = VarId(j);
        prop_assert_eq!(
            a.objective_coeff(v).to_bits(),
            b.objective_coeff(v).to_bits(),
            "objective bits of var {}",
            j
        );
        prop_assert_eq!(a.lower_bounds()[j].to_bits(), b.lower_bounds()[j].to_bits());
        prop_assert_eq!(a.upper_bounds()[j].to_bits(), b.upper_bounds()[j].to_bits());
        prop_assert_eq!(a.is_integer(v), b.is_integer(v));
    }
    for i in 0..a.num_constraints() {
        let (ca, cb) = (a.constraint(i), b.constraint(i));
        prop_assert_eq!(ca.sense, cb.sense, "sense of row {}", i);
        prop_assert_eq!(ca.rhs.to_bits(), cb.rhs.to_bits(), "rhs bits of row {}", i);
        prop_assert_eq!(ca.terms.len(), cb.terms.len(), "terms of row {}", i);
        for (ta, tb) in ca.terms.iter().zip(&cb.terms) {
            prop_assert_eq!(ta.0, tb.0, "term variable in row {}", i);
            prop_assert_eq!(ta.1.to_bits(), tb.1.to_bits(), "term bits in row {}", i);
        }
    }
    Ok(())
}

/// Lift a binary graph into a 3-tier one (gateway at 1/8 cost, both hops
/// the same bandwidth), as in `proptest_multitier`.
fn lift_k3(pg: &PartitionGraph) -> TieredGraph {
    let mut tg = TieredGraph::from_binary(pg);
    tg.tiers = 3;
    for v in &mut tg.vertices {
        let mote = v.cpu_cost[0];
        v.cpu_cost = vec![mote, mote / 8.0, 0.0];
    }
    for e in &mut tg.edges {
        let bw = e.bandwidth[0];
        e.bandwidth = vec![bw, bw];
    }
    tg
}

/// Random reducing pipeline as a real (profilable) dataflow graph.
fn random_app(
    stages: usize,
    costs: &[u64],
    keeps: &[usize],
) -> (wishbone::dataflow::Graph, OperatorId) {
    let mut b = GraphBuilder::new();
    b.enter_node_namespace();
    let src = b.source("src");
    let mut prev = src;
    for s in 0..stages {
        let cost = costs[s];
        let keep = keeps[s].max(1);
        prev = b.transform(
            format!("stage{s}"),
            Box::new(wishbone::dataflow::FnWork(
                move |_p: usize, v: &Value, cx: &mut wishbone::dataflow::ExecCtx| {
                    let w = v.as_i16s().unwrap();
                    cx.meter().loop_scope(cost, |m| {
                        m.int(cost);
                        m.fadd(cost / 2);
                    });
                    cx.emit(Value::VecI16(w.iter().step_by(keep).copied().collect()));
                },
            )),
            prev,
        );
    }
    b.exit_namespace();
    b.sink("out", prev);
    (b.finish().unwrap(), src.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) 2-site star ≡ binary restricted encoding, bit for bit.
    #[test]
    fn two_site_star_is_the_binary_encoding_bit_for_bit(
        pg in pg_strategy(),
        budget in 0.1f64..1.0,
        net_pick in 1e2f64..2e4,
    ) {
        // The top fifth of the range means "unconstrained": the
        // row-omission contract must hold bit-for-bit too.
        let net = if net_pick > 1e4 { f64::INFINITY } else { net_pick };
        let binary = encode(
            &pg,
            Encoding::Restricted,
            &ObjectiveConfig::bandwidth_only(budget, net),
        );
        // Sites: 0 = server (root), 1 = the leaf class.
        let lifted = TieredGraph::from_binary(&pg);
        let ep = encode_deployment(
            &[LeafChain {
                graph: &lifted,
                path: vec![1, 0],
                count: 1.0,
            }],
            &DeploymentObjective {
                alpha: vec![0.0, 0.0],
                cpu_budget: vec![f64::INFINITY, budget],
                count: vec![1.0, 1.0],
                beta: vec![0.0, 1.0],
                net_budget: vec![f64::INFINITY, net],
                row_order: vec![1, 0],
            },
        );
        assert_problems_identical(&binary.problem, &ep.problem)?;
    }

    /// (a) k = 3 path ≡ `encode_multitier`, bit for bit — and the
    /// infinite-budget row-omission contract carries over.
    #[test]
    fn path_deployment_is_the_multitier_encoding_bit_for_bit(
        pg in pg_strategy(),
        mote_budget in 0.05f64..0.8,
        relay_pick in 0.01f64..0.25,
        link_pick in 1e2f64..2e4,
    ) {
        let tg = lift_k3(&pg);
        // Top-of-range picks mean "unconstrained" (omitted rows).
        let relay = if relay_pick > 0.2 { f64::INFINITY } else { relay_pick };
        let link = if link_pick > 1e4 { f64::INFINITY } else { link_pick };
        let tobj = TierObjective::bandwidth_only(
            vec![mote_budget, relay, f64::INFINITY],
            vec![link, 1e9],
        );
        let oracle = encode_multitier(&tg, &tobj);
        // Sites: 0 = server, 1 = gateway, 2 = motes (path 2 → 1 → 0).
        let ep = encode_deployment(
            &[LeafChain {
                graph: &tg,
                path: vec![2, 1, 0],
                count: 1.0,
            }],
            &DeploymentObjective {
                alpha: vec![0.0; 3],
                cpu_budget: vec![f64::INFINITY, relay, mote_budget],
                count: vec![1.0; 3],
                beta: vec![0.0, 1.0, 1.0],
                net_budget: vec![f64::INFINITY, 1e9, link],
                row_order: vec![2, 1, 0],
            },
        );
        assert_problems_identical(&oracle.problem, &ep.problem)?;
        // Bit-identical problems must decode identically through both
        // variable maps on both backends.
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let opts = IlpOptions { backend, ..Default::default() };
            match (oracle.problem.solve_ilp(&opts), ep.problem.solve_ilp(&opts)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(oracle.decode(&a.values), ep.decode(&b.values)[0].clone());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "verdict mismatch: {:?} vs {:?}", a.is_ok(), b.is_ok()),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (b) star of heterogeneous leaf classes ≡ `partition_mixed`: the
    /// joint block-diagonal ILP reproduces every per-class partition.
    #[test]
    fn star_reproduces_mixed_per_class_partitions(
        stages in 2usize..5,
        costs in prop::collection::vec(100u64..4000, 4),
        keeps in prop::collection::vec(1usize..5, 4),
        weak_budget in 0.05f64..1.0,
        weak_rate in 0.02f64..0.5,
        strong_budget in 0.05f64..1.0,
    ) {
        let (mut g, src) = random_app(stages, &costs, &keeps);
        let trace = SourceTrace {
            source: src,
            elements: (0..10).map(|i| Value::VecI16(vec![i as i16; 128])).collect(),
            rate_hz: 20.0,
        };
        let prof = match profile(&mut g, &[trace]) {
            Ok(p) => p,
            Err(_) => return Ok(()), // degenerate trace: skip
        };
        let mote = Platform::tmote_sky();
        let strong = Platform::gumstix();
        let mut weak_cfg = PartitionConfig::for_platform(&mote).at_rate(weak_rate);
        weak_cfg.cpu_budget = weak_budget;
        weak_cfg.net_budget = 1e9;
        let mut strong_cfg = PartitionConfig::for_platform(&strong);
        strong_cfg.cpu_budget = strong_budget;
        strong_cfg.net_budget = 1e9;

        let mixed = match partition_mixed(
            &g,
            &prof,
            &[
                NodeClass { platform: mote.clone(), count: 1, config: weak_cfg.clone() },
                NodeClass { platform: strong.clone(), count: 1, config: strong_cfg.clone() },
            ],
        ) {
            Ok(m) => m,
            Err(_) => return Ok(()), // a class may genuinely not fit
        };

        let mut dep = Deployment::new(Site::server("server", &Platform::server()));
        let root = dep.root();
        dep.attach(
            root,
            Site::new("motes", &mote)
                .with_cpu_budget(weak_budget)
                .at_rate(weak_rate),
            LinkSpec { beta: 1.0, net_budget: 1e9 },
        );
        dep.attach(
            root,
            Site::new("microservers", &strong).with_cpu_budget(strong_budget),
            LinkSpec { beta: 1.0, net_budget: 1e9 },
        );
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut cfg = DeploymentConfig::default();
            cfg.ilp.backend = backend;
            let part = partition_deployment(&g, &prof, &dep, &cfg)
                .expect("mixed succeeded, so the joint star must too");
            for (leaf, class) in part.leaves.iter().zip(&mixed.classes) {
                prop_assert_eq!(
                    &leaf.site_ops[0],
                    &class.partition.node_ops,
                    "{:?}: class {} diverged from partition_mixed",
                    backend,
                    class.platform_name
                );
            }
        }
    }

    /// (c) genuine trees: every per-gateway CPU and uplink budget holds
    /// at the returned placement, on both backends, with matching
    /// objectives.
    #[test]
    fn tree_budgets_hold_on_both_backends(
        stages in 2usize..5,
        costs in prop::collection::vec(100u64..4000, 4),
        keeps in prop::collection::vec(1usize..5, 4),
        gw_budgets in ((0.01f64..0.5), (0.01f64..0.5)),
        uplink_rate in ((50.0f64..5000.0), (0.05f64..0.5)),
        count_a in 1usize..4,
    ) {
        let (gw_budget_a, gw_budget_b) = gw_budgets;
        let (uplink_a, rate) = uplink_rate;
        let (mut g, src) = random_app(stages, &costs, &keeps);
        let trace = SourceTrace {
            source: src,
            elements: (0..10).map(|i| Value::VecI16(vec![i as i16; 128])).collect(),
            rate_hz: 20.0,
        };
        let prof = match profile(&mut g, &[trace]) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mote = Platform::tmote_sky();
        let phone = Platform::iphone();
        let mut dep = Deployment::new(Site::server("server", &Platform::server()));
        let root = dep.root();
        let gw_a = dep.attach(
            root,
            Site::new("gw-a", &phone).with_cpu_budget(gw_budget_a),
            LinkSpec { beta: 1.0, net_budget: uplink_a },
        );
        let gw_b = dep.attach(
            root,
            Site::new("gw-b", &phone).with_cpu_budget(gw_budget_b),
            LinkSpec { beta: 1.0, net_budget: 1e9 },
        );
        dep.attach(
            gw_a,
            Site::new("motes-a", &mote).with_count(count_a),
            LinkSpec { beta: 1.0, net_budget: 1e9 },
        );
        dep.attach(
            gw_b,
            Site::new("motes-b", &mote),
            LinkSpec { beta: 1.0, net_budget: 1e9 },
        );

        let mut objectives: Vec<Option<f64>> = Vec::new();
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut cfg = DeploymentConfig::default().at_rate(rate);
            cfg.ilp.backend = backend;
            match partition_deployment(&g, &prof, &dep, &cfg) {
                Ok(part) => {
                    for s in dep.site_ids() {
                        let site = dep.site(s);
                        if site.cpu_budget.is_finite() {
                            prop_assert!(
                                part.site_cpu[s.0] <= site.cpu_budget + 1e-6,
                                "{:?}: site {} cpu {} over {}",
                                backend, site.name, part.site_cpu[s.0], site.cpu_budget
                            );
                        }
                        if let Some(l) = dep.uplink(s) {
                            if l.net_budget.is_finite() {
                                prop_assert!(
                                    part.link_net[s.0] <= l.net_budget + 1e-6,
                                    "{:?}: site {} uplink {} over {}",
                                    backend, site.name, part.link_net[s.0], l.net_budget
                                );
                            }
                        }
                    }
                    // Structure: positions are monotone along every edge
                    // of every leaf's program instance.
                    for leaf in &part.leaves {
                        for eid in g.edge_ids() {
                            let e = g.edge(eid);
                            let (ps, pd) = (
                                leaf.position_of(e.src).unwrap(),
                                leaf.position_of(e.dst).unwrap(),
                            );
                            prop_assert!(ps <= pd, "edge goes backwards");
                        }
                    }
                    objectives.push(Some(part.objective));
                }
                Err(_) => objectives.push(None),
            }
        }
        match (objectives[0], objectives[1]) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                "backends disagree: dense {} vs sparse {}", a, b
            ),
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility flipped: {:?} vs {:?}", a, b),
        }
    }
}

/// Sanity outside proptest: the star's server must still catch every
/// operator some class leaves off-leaf (the mixed "stages of partial
/// processing" contract, via the joint solve).
#[test]
fn star_server_side_union_matches_mixed() {
    let (mut g, src) = random_app(3, &[500, 2000, 900, 100], &[2, 3, 2, 1]);
    let trace = SourceTrace {
        source: src,
        elements: (0..10)
            .map(|i| Value::VecI16(vec![i as i16; 128]))
            .collect(),
        rate_hz: 20.0,
    };
    let prof = profile(&mut g, &[trace]).unwrap();
    let mote = Platform::tmote_sky();
    let strong = Platform::gumstix();
    let weak_cfg = PartitionConfig::for_platform(&mote).at_rate(0.1);
    let strong_cfg = PartitionConfig::for_platform(&strong);
    let mixed = partition_mixed(
        &g,
        &prof,
        &[
            NodeClass {
                platform: mote.clone(),
                count: 8,
                config: weak_cfg.clone(),
            },
            NodeClass {
                platform: strong.clone(),
                count: 2,
                config: strong_cfg.clone(),
            },
        ],
    )
    .unwrap();

    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    dep.attach(
        root,
        Site::new("motes", &mote)
            .with_count(8)
            .with_cpu_budget(weak_cfg.cpu_budget)
            .at_rate(0.1),
        LinkSpec {
            beta: 1.0,
            // Aggregate uplink: 8 motes sharing a channel budgeted at the
            // per-class (per-node) figure each.
            net_budget: 8.0 * weak_cfg.net_budget,
        },
    );
    dep.attach(
        root,
        Site::new("microservers", &strong).with_cpu_budget(strong_cfg.cpu_budget),
        LinkSpec {
            beta: 1.0,
            net_budget: 2.0 * strong_cfg.net_budget,
        },
    );
    let part = partition_deployment(&g, &prof, &dep, &DeploymentConfig::default()).unwrap();
    let server_union: HashSet<OperatorId> = part.ops_at(SiteId(0));
    assert_eq!(server_union, mixed.server_side_union(&g));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PR-7 churn parity: a batch of [`DeploymentDelta`]s applied to a
    /// prepared instance (re-provision one leaf class, re-budget its
    /// gateway, and take the sibling leaf out of service and back)
    /// must solve exactly like a cold rebuild of the delta'd
    /// deployment — same feasibility verdict, same objective and
    /// placements — on both simplex backends, without re-encoding.
    #[test]
    fn apply_delta_parity_with_cold_rebuild(
        stages in 2usize..5,
        costs in prop::collection::vec(100u64..4000, 4),
        keeps in prop::collection::vec(1usize..5, 4),
        gw_budgets in ((0.01f64..0.5), (0.01f64..0.5), (0.5f64..1.5)),
        uplink_rate in ((50.0f64..5000.0), (0.05f64..0.5)),
        counts in (1usize..4, 1usize..6),
    ) {
        let (gw_budget_a, gw_budget_b, budget_scale) = gw_budgets;
        let (count_a, new_count_a) = counts;
        let (uplink_a, rate) = uplink_rate;
        let (mut g, src) = random_app(stages, &costs, &keeps);
        let trace = SourceTrace {
            source: src,
            elements: (0..10).map(|i| Value::VecI16(vec![i as i16; 128])).collect(),
            rate_hz: 20.0,
        };
        let prof = match profile(&mut g, &[trace]) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mote = Platform::tmote_sky();
        let phone = Platform::iphone();
        // Sites: 0 = server, 1 = gw-a, 2 = gw-b, 3 = motes-a, 4 = motes-b.
        let mk_dep = |count_a: usize, budget_a: f64| {
            let mut dep = Deployment::new(Site::server("server", &Platform::server()));
            let root = dep.root();
            let gw_a = dep.attach(
                root,
                Site::new("gw-a", &phone).with_cpu_budget(budget_a),
                LinkSpec { beta: 1.0, net_budget: uplink_a },
            );
            let gw_b = dep.attach(
                root,
                Site::new("gw-b", &phone).with_cpu_budget(gw_budget_b),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep.attach(
                gw_a,
                Site::new("motes-a", &mote).with_count(count_a),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep.attach(
                gw_b,
                Site::new("motes-b", &mote),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep
        };
        let new_budget_a = gw_budget_a * budget_scale;

        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut cfg = DeploymentConfig::default();
            cfg.ilp.backend = backend;
            let dep = mk_dep(count_a, gw_budget_a);
            let mut warm = match PreparedDeployment::new(&g, &prof, &dep, &cfg) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            };
            // Two delta batches (two in-place rescales): an outage for
            // motes-b, then its revival riding along with the churn.
            warm.apply_delta(&[DeploymentDelta::RemoveLeaf { leaf: SiteId(4) }]);
            warm.apply_delta(&[
                DeploymentDelta::SetLeafCount { leaf: SiteId(3), count: new_count_a },
                DeploymentDelta::SetCpuBudget { site: SiteId(1), cpu_budget: new_budget_a },
                DeploymentDelta::SetLeafCount { leaf: SiteId(4), count: 1 },
            ]);
            prop_assert_eq!(warm.encodes(), 1, "deltas must not re-encode");

            let cold_dep = mk_dep(new_count_a, new_budget_a);
            let mut cold = PreparedDeployment::new(&g, &prof, &cold_dep, &cfg)
                .expect("same graph prepared once already");
            match (warm.solve_at(rate), cold.solve_at(rate)) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(
                        (a.objective - b.objective).abs() < 1e-6 * (1.0 + b.objective.abs()),
                        "{:?}: warm {} vs cold {}", backend, a.objective, b.objective
                    );
                    for (la, lb) in a.leaves.iter().zip(b.leaves.iter()) {
                        prop_assert_eq!(
                            &la.site_ops, &lb.site_ops,
                            "{:?}: placements diverged after deltas", backend
                        );
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "{:?}: feasibility flipped: warm {:?} vs cold {:?}",
                    backend, a.is_ok(), b.is_ok()
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PR-10 satellite: `SetNetBudget` — the uplink-row in-place
    /// rescale — must solve exactly like a cold rebuild with the new
    /// uplink budget, on both backends, without re-encoding. The scale
    /// range spans 1, so tightening and relaxing are both exercised,
    /// and a CPU-budget delta rides in the same batch to pin their
    /// composition.
    #[test]
    fn set_net_budget_parity_with_cold_rebuild(
        stages in 2usize..5,
        costs in prop::collection::vec(100u64..4000, 4),
        keeps in prop::collection::vec(1usize..5, 4),
        gw_budgets in ((0.01f64..0.5), (0.01f64..0.5), (0.5f64..1.5)),
        uplink_scale_rate in ((50.0f64..5000.0), (0.3f64..3.0), (0.05f64..0.5)),
        count_a in 1usize..4,
    ) {
        let (gw_budget_a, gw_budget_b, budget_scale) = gw_budgets;
        let (uplink_a, uplink_scale, rate) = uplink_scale_rate;
        let (mut g, src) = random_app(stages, &costs, &keeps);
        let trace = SourceTrace {
            source: src,
            elements: (0..10).map(|i| Value::VecI16(vec![i as i16; 128])).collect(),
            rate_hz: 20.0,
        };
        let prof = match profile(&mut g, &[trace]) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mote = Platform::tmote_sky();
        let phone = Platform::iphone();
        // Sites: 0 = server, 1 = gw-a, 2 = gw-b, 3 = motes-a, 4 = motes-b.
        let mk_dep = |uplink_a: f64, budget_a: f64| {
            let mut dep = Deployment::new(Site::server("server", &Platform::server()));
            let root = dep.root();
            let gw_a = dep.attach(
                root,
                Site::new("gw-a", &phone).with_cpu_budget(budget_a),
                LinkSpec { beta: 1.0, net_budget: uplink_a },
            );
            let gw_b = dep.attach(
                root,
                Site::new("gw-b", &phone).with_cpu_budget(gw_budget_b),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep.attach(
                gw_a,
                Site::new("motes-a", &mote).with_count(count_a),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep.attach(
                gw_b,
                Site::new("motes-b", &mote),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep
        };
        let new_uplink_a = uplink_a * uplink_scale;
        let new_budget_a = gw_budget_a * budget_scale;

        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let mut cfg = DeploymentConfig::default();
            cfg.ilp.backend = backend;
            let dep = mk_dep(uplink_a, gw_budget_a);
            let mut warm = match PreparedDeployment::new(&g, &prof, &dep, &cfg) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            };
            warm.apply_delta(&[
                DeploymentDelta::SetNetBudget { site: SiteId(1), net_budget: new_uplink_a },
                DeploymentDelta::SetCpuBudget { site: SiteId(1), cpu_budget: new_budget_a },
            ]);
            prop_assert_eq!(warm.encodes(), 1, "deltas must not re-encode");

            let cold_dep = mk_dep(new_uplink_a, new_budget_a);
            let mut cold = PreparedDeployment::new(&g, &prof, &cold_dep, &cfg)
                .expect("same graph prepared once already");
            match (warm.solve_at(rate), cold.solve_at(rate)) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(
                        (a.objective - b.objective).abs() < 1e-6 * (1.0 + b.objective.abs()),
                        "{:?}: warm {} vs cold {}", backend, a.objective, b.objective
                    );
                    for (la, lb) in a.leaves.iter().zip(b.leaves.iter()) {
                        prop_assert_eq!(
                            &la.site_ops, &lb.site_ops,
                            "{:?}: placements diverged after SetNetBudget", backend
                        );
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "{:?}: feasibility flipped: warm {:?} vs cold {:?}",
                    backend, a.is_ok(), b.is_ok()
                ),
            }
        }
    }

    /// PR-10: `ShapeKey` equality implies delta-reachability. Two
    /// deployments differing arbitrarily in leaf counts and finite
    /// CPU/uplink budget values must (a) produce equal keys, and
    /// (b) morphing the first's prepared encoding with
    /// `deltas_between` must leave a problem **bit-identical** to a
    /// cold prepare of the second at the same rate — the exact
    /// contract the fleet's `ShapeCache` banks on. Flipping a budget's
    /// finiteness (a row appearing or vanishing) must change the key.
    #[test]
    fn shape_key_equality_implies_delta_reachable(
        stages in 2usize..5,
        costs in prop::collection::vec(100u64..4000, 4),
        keeps in prop::collection::vec(1usize..5, 4),
        budgets_a in ((0.01f64..0.5), (50.0f64..5000.0)),
        budgets_b in ((0.01f64..0.5), (50.0f64..5000.0)),
        counts_rate in (1usize..5, 1usize..5, 0.05f64..0.5),
    ) {
        let (cpu_a, net_a) = budgets_a;
        let (cpu_b, net_b) = budgets_b;
        let (count_a, count_b, rate) = counts_rate;
        let (mut g, src) = random_app(stages, &costs, &keeps);
        let trace = SourceTrace {
            source: src,
            elements: (0..10).map(|i| Value::VecI16(vec![i as i16; 128])).collect(),
            rate_hz: 20.0,
        };
        let prof = match profile(&mut g, &[trace]) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mote = Platform::tmote_sky();
        let phone = Platform::iphone();
        // Sites: 0 = server, 1 = gateway, 2 = motes.
        let mk_dep = |count: usize, cpu: f64, net: f64| {
            let mut dep = Deployment::new(Site::server("server", &Platform::server()));
            let root = dep.root();
            let gw = dep.attach(
                root,
                Site::new("gw", &phone).with_cpu_budget(cpu),
                LinkSpec { beta: 1.0, net_budget: net },
            );
            dep.attach(
                gw,
                Site::new("motes", &mote).with_count(count),
                LinkSpec { beta: 1.0, net_budget: 1e9 },
            );
            dep
        };
        let cfg = DeploymentConfig::default();
        let dep_a = mk_dep(count_a, cpu_a, net_a);
        let dep_b = mk_dep(count_b, cpu_b, net_b);

        prop_assert_eq!(
            shape_key(&g, &prof, &dep_a, &cfg),
            shape_key(&g, &prof, &dep_b, &cfg),
            "counts and finite budget values must not be shape"
        );
        let unbudgeted = mk_dep(count_b, cpu_b, f64::INFINITY);
        prop_assert!(
            shape_key(&g, &prof, &dep_a, &cfg) != shape_key(&g, &prof, &unbudgeted, &cfg),
            "budget finiteness must be shape"
        );

        let mut morphed = match PreparedDeployment::new(&g, &prof, &dep_a, &cfg) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let deltas = deltas_between(morphed.deployment(), &dep_b);
        if !deltas.is_empty() {
            morphed.apply_delta(&deltas);
        }
        prop_assert_eq!(morphed.encodes(), 1, "reachability must not re-encode");
        let mut cold = PreparedDeployment::new(&g, &prof, &dep_b, &cfg)
            .expect("same graph prepared once already");
        // Retarget both to the same rate (errors allowed — the bit
        // comparison below is the property under test).
        let warm_result = morphed.solve_at(rate);
        let cold_result = cold.solve_at(rate);
        assert_problems_identical(morphed.problem(), cold.problem())?;
        prop_assert_eq!(
            warm_result.is_ok(), cold_result.is_ok(),
            "bit-identical problems must agree on feasibility"
        );
        if let (Ok(a), Ok(b)) = (warm_result, cold_result) {
            prop_assert_eq!(
                a.objective.to_bits(), b.objective.to_bits(),
                "bit-identical problems must solve bit-identically ({} vs {})",
                a.objective, b.objective
            );
        }
    }
}
