//! Property tests for the k-way monotone-cut encoding over random
//! weighted DAGs: k = 2 must be *identical* to the binary restricted
//! encoding (assignment, objective, and verdict, on both simplex
//! backends), and k = 3 solutions must satisfy the chain invariants.

use proptest::prelude::*;
use std::collections::HashSet;

use wishbone::core::{
    encode, encode_multitier, Encoding, ObjectiveConfig, PEdge, PVertex, PartitionGraph, Pin,
    TierObjective, TieredGraph,
};
use wishbone::dataflow::OperatorId;
use wishbone::ilp::{IlpOptions, SolverBackend};

/// Random layered DAG: vertex 0 pinned Node, last pinned Server, edges only
/// forward (guaranteeing acyclicity and source/sink reachability).
fn pg_strategy() -> impl Strategy<Value = PartitionGraph> {
    (3usize..9).prop_flat_map(|n| {
        let cpus = prop::collection::vec(0.0f64..0.4, n);
        let edge_picks = prop::collection::vec(prop::bool::ANY, n * (n - 1) / 2);
        let bws = prop::collection::vec(1.0f64..100.0, n * (n - 1) / 2);
        (cpus, edge_picks, bws).prop_map(move |(cpus, picks, bws)| {
            let vertices: Vec<PVertex> = (0..n)
                .map(|i| PVertex {
                    ops: vec![OperatorId(i)],
                    cpu_cost: cpus[i],
                    pin: if i == 0 {
                        Pin::Node
                    } else if i == n - 1 {
                        Pin::Server
                    } else {
                        Pin::Movable
                    },
                })
                .collect();
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if j == i + 1 || picks[k] {
                        edges.push(PEdge {
                            src: i,
                            dst: j,
                            bandwidth: bws[k],
                            graph_edges: vec![],
                        });
                    }
                    k += 1;
                }
            }
            PartitionGraph { vertices, edges }
        })
    })
}

fn opts(backend: SolverBackend) -> IlpOptions {
    IlpOptions {
        backend,
        ..Default::default()
    }
}

/// Lift a binary graph into a 3-tier one: the gateway runs the same ops at
/// an eighth of the CPU cost, both hops see the same bandwidth.
fn lift_k3(pg: &PartitionGraph) -> TieredGraph {
    let mut tg = TieredGraph::from_binary(pg);
    tg.tiers = 3;
    for v in &mut tg.vertices {
        let mote = v.cpu_cost[0];
        v.cpu_cost = vec![mote, mote / 8.0, 0.0];
    }
    for e in &mut tg.edges {
        let bw = e.bandwidth[0];
        e.bandwidth = vec![bw, bw];
    }
    tg
}

/// Per-tier CPU loads of a decoded assignment.
fn tier_cpu(tg: &TieredGraph, tiers: &[usize]) -> Vec<f64> {
    let mut cpu = vec![0.0; tg.tiers];
    for (v, vert) in tg.vertices.iter().enumerate() {
        cpu[tiers[v]] += vert.cpu_cost[tiers[v]];
    }
    cpu
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance anchor: for k = 2 the multitier encoding is the
    /// binary restricted encoding — same verdict, same objective, same
    /// assignment — under both simplex backends.
    #[test]
    fn k2_parity_with_binary_encoding(
        pg in pg_strategy(),
        budget in 0.1f64..1.0,
        sparse in prop::bool::ANY,
    ) {
        let backend = if sparse { SolverBackend::Sparse } else { SolverBackend::Dense };
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        let bep = encode(&pg, Encoding::Restricted, &obj);
        let tg = TieredGraph::from_binary(&pg);
        let tobj = TierObjective {
            alpha: vec![0.0, 0.0],
            cpu_budget: vec![budget, f64::INFINITY],
            beta: vec![1.0],
            net_budget: vec![1e9],
        };
        let tep = encode_multitier(&tg, &tobj);
        prop_assert_eq!(bep.problem.num_vars(), tep.problem.num_vars());
        prop_assert_eq!(bep.problem.num_constraints(), tep.problem.num_constraints());

        let b = bep.problem.solve_ilp(&opts(backend));
        let t = tep.problem.solve_ilp(&opts(backend));
        match (b, t) {
            (Ok(b), Ok(t)) => {
                prop_assert!((b.objective - t.objective).abs()
                    < 1e-9 * (1.0 + b.objective.abs()),
                    "objective {} vs {}", b.objective, t.objective);
                let bset = bep.decode(&b.values);
                let tset: HashSet<usize> = tep.decode(&t.values)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| t == 0)
                    .map(|(v, _)| v)
                    .collect();
                prop_assert_eq!(bset, tset, "assignments diverged");
            }
            (Err(b), Err(t)) => prop_assert_eq!(b, t, "verdicts diverged"),
            (b, t) => prop_assert!(false, "verdict mismatch: binary {:?} vs k2 {:?}",
                b.is_ok(), t.is_ok()),
        }
    }

    /// A free middle tier (no CPU bill, no uplink bill) changes nothing:
    /// the k = 3 optimum equals the binary optimum.
    #[test]
    fn free_middle_tier_preserves_the_optimum(pg in pg_strategy(), budget in 0.1f64..1.0) {
        let obj = ObjectiveConfig::bandwidth_only(budget, 1e9);
        let binary = encode(&pg, Encoding::Restricted, &obj)
            .problem
            .solve_ilp(&IlpOptions::default())
            .ok()
            .map(|s| s.objective);

        let mut tg = TieredGraph::from_binary(&pg);
        tg.tiers = 3;
        for v in &mut tg.vertices {
            let mote = v.cpu_cost[0];
            v.cpu_cost = vec![mote, 0.0, 0.0];
        }
        for e in &mut tg.edges {
            let bw = e.bandwidth[0];
            e.bandwidth = vec![bw, bw];
        }
        let tobj = TierObjective {
            alpha: vec![0.0; 3],
            cpu_budget: vec![budget, f64::INFINITY, f64::INFINITY],
            beta: vec![1.0, 0.0],
            net_budget: vec![1e9, f64::INFINITY],
        };
        let k3 = encode_multitier(&tg, &tobj)
            .problem
            .solve_ilp(&IlpOptions::default())
            .ok()
            .map(|s| s.objective);
        match (binary, k3) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6,
                "free relay changed the optimum: {} -> {}", a, b),
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility flipped: {:?} vs {:?}", a, b),
        }
    }

    /// k = 3 solutions respect the chain: tiers are monotone along edges,
    /// pinned endpoints land on their tiers, and every finite CPU budget
    /// holds.
    #[test]
    fn k3_solutions_respect_chain_invariants(
        pg in pg_strategy(),
        mote_budget in 0.05f64..0.8,
        relay_budget in 0.01f64..0.2,
    ) {
        let tg = lift_k3(&pg);
        let tobj = TierObjective::bandwidth_only(
            vec![mote_budget, relay_budget, f64::INFINITY],
            vec![1e9, 1e9],
        );
        let ep = encode_multitier(&tg, &tobj);
        if let Ok(sol) = ep.problem.solve_ilp(&IlpOptions::default()) {
            let tiers = ep.decode(&sol.values);
            for e in &tg.edges {
                prop_assert!(tiers[e.src] <= tiers[e.dst],
                    "edge {}->{} goes backwards: {} -> {}",
                    e.src, e.dst, tiers[e.src], tiers[e.dst]);
            }
            prop_assert_eq!(tiers[0], 0, "pinned source tier");
            prop_assert_eq!(tiers[tg.vertices.len() - 1], 2, "pinned sink tier");
            let cpu = tier_cpu(&tg, &tiers);
            prop_assert!(cpu[0] <= mote_budget + 1e-6,
                "mote cpu {} over {}", cpu[0], mote_budget);
            prop_assert!(cpu[1] <= relay_budget + 1e-6,
                "relay cpu {} over {}", cpu[1], relay_budget);
        }
    }

    /// Loosening the relay budget never hurts the objective (more room in
    /// the middle tier only widens the feasible set).
    #[test]
    fn looser_relay_budget_never_hurts(pg in pg_strategy(), budget in 0.05f64..0.5) {
        let tg = lift_k3(&pg);
        let solve = |relay_budget: f64| {
            let tobj = TierObjective::bandwidth_only(
                vec![budget, relay_budget, f64::INFINITY],
                vec![1e9, 1e9],
            );
            encode_multitier(&tg, &tobj)
                .problem
                .solve_ilp(&IlpOptions::default())
                .ok()
                .map(|s| s.objective)
        };
        let tight = solve(0.02);
        let loose = solve(1.0);
        match (tight, loose) {
            (Some(a), Some(b)) => prop_assert!(b <= a + 1e-6,
                "loosening the relay made it worse: {} -> {}", a, b),
            (Some(_), None) => prop_assert!(false, "loosening lost feasibility"),
            _ => {}
        }
    }
}
