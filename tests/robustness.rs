//! PR-7 acceptance: single-gateway-failure robustness.
//!
//! A 2-ward EEG forest whose gateways are small clusters (3 and 2
//! devices). Nominal pricing loads each gateway close to its per-device
//! CPU budget; losing one device rebalances its share onto the
//! survivors and blows the budget.
//! [`RobustnessMode::SingleGatewayFailure`] prices every interior CPU
//! and uplink row at `count − 1`, so the robust partition must stay
//! feasible under *every* single gateway-device failure — verified both
//! arithmetically against the budget rows and by exhaustively failing
//! each gateway in the tree simulator.

use wishbone::prelude::*;

/// Per-device CPU fraction of `ops` on `platform` at `rate`.
fn class_cost(prof: &GraphProfile, ops: &[OperatorId], platform: &Platform, rate: f64) -> f64 {
    ops.iter()
        .map(|&op| prof.cpu_fraction(op, platform) * rate)
        .sum()
}

#[test]
fn robust_partition_survives_every_single_gateway_failure() {
    let mut app = build_eeg_app(EegParams {
        n_channels: 3,
        ..Default::default()
    });
    let traces = app.traces(6, 2..4, 29);
    let prof = profile(&mut app.graph, &traces).unwrap();
    let leaf_platform = Platform::gumstix();
    let gw_platform = Platform::iphone();

    let movable: Vec<OperatorId> = app
        .graph
        .operator_ids()
        .filter(|id| !app.sources.contains(id))
        .collect();
    // Load the gateways to ~93% of their per-device budget under
    // nominal pricing: 6 leaf devices over 3 gateway devices (ward A)
    // and 4 over 2 (ward B) both offer 2x a class per gateway device.
    // The budget is deliberately below the simulator's physical
    // capacity of 1.0 so that a placement honoring the failed-over
    // budget rows also survives in the simulator (whose relay charges
    // run a few percent above the profiled prediction), while a
    // nominal placement pushed to `c/(c − 1)` times its budget lands
    // past 1.0 and sheds load.
    let gw_budget = 0.75;
    let class_unit = class_cost(&prof, &movable, &gw_platform, 1.0);
    let rate = 0.35 / class_unit;
    let src_budget = 1.0001 * class_cost(&prof, &app.sources, &leaf_platform, rate);

    let (gw_counts, leaf_counts) = ([3usize, 2], [6usize, 4]);
    let mut dep = Deployment::new(Site::server("server", &Platform::server()));
    let root = dep.root();
    let wide_open = LinkSpec {
        beta: 1.0,
        net_budget: 1e12,
    };
    for ward in 0..2 {
        let gw = dep.attach(
            root,
            Site::new(format!("gw-{ward}"), &gw_platform)
                .with_count(gw_counts[ward])
                .with_cpu_budget(gw_budget),
            wide_open,
        );
        // Caps afford only their pinned sources: the reducers must run
        // on the gateway cluster or the server.
        dep.attach(
            gw,
            Site::new(format!("ward-{ward}"), &leaf_platform)
                .with_count(leaf_counts[ward])
                .with_cpu_budget(src_budget),
            wide_open,
        );
    }
    let gw_sites = [SiteId(1), SiteId(3)];

    let cfg = DeploymentConfig::default().at_rate(rate);
    let nominal = partition_deployment(&app.graph, &prof, &dep, &cfg).expect("nominal feasible");
    let robust = partition_deployment(
        &app.graph,
        &prof,
        &dep,
        &cfg.clone()
            .with_robustness(RobustnessMode::SingleGatewayFailure),
    )
    .expect("robust feasible");

    // ILP arithmetic: failing one of `c` gateway devices multiplies the
    // survivors' per-device CPU by `c/(c − 1)`. The robust partition
    // must satisfy every such failed-over budget row; the nominal one
    // must violate at least one (otherwise this instance proves
    // nothing).
    let failed_over = |part: &DeploymentPartition, g: SiteId, c: f64| {
        part.site_cpu[g.0] * c / (c - 1.0) <= gw_budget + 1e-9
    };
    let mut nominal_fragile = false;
    for (ward, &g) in gw_sites.iter().enumerate() {
        let c = gw_counts[ward] as f64;
        assert!(
            part_uses_budget(&nominal, g, gw_budget),
            "precondition: nominal pricing must load gw-{ward} near its budget \
             (got {:.3} of {gw_budget})",
            nominal.site_cpu[g.0]
        );
        if !failed_over(&nominal, g, c) {
            nominal_fragile = true;
        }
        assert!(
            failed_over(&robust, g, c),
            "robust partition violates gw-{ward}'s failed-over CPU row: \
             {:.3} x {c}/{} > {gw_budget}",
            robust.site_cpu[g.0],
            c - 1.0
        );
    }
    assert!(
        nominal_fragile,
        "precondition: the nominal partition must be fragile somewhere \
         (site_cpu {:?})",
        nominal.site_cpu
    );

    // Simulator ground truth: exhaustively fail each gateway device
    // class down to `count − 1` and replay both placements. The robust
    // placement must never saturate the surviving relays; the nominal
    // one must shed load on some failure.
    let mk_topo = |counts: [usize; 2]| TreeTopology {
        parent: vec![None, Some(0), Some(1), Some(0), Some(3)],
        platforms: vec![
            Platform::server(),
            gw_platform.clone(),
            leaf_platform.clone(),
            gw_platform.clone(),
            leaf_platform.clone(),
        ],
        counts: vec![1, counts[0], leaf_counts[0], counts[1], leaf_counts[1]],
        uplink: vec![
            None,
            Some(ChannelParams::wifi(1e9)),
            Some(ChannelParams::wifi(1e9)),
            Some(ChannelParams::wifi(1e9)),
            Some(ChannelParams::wifi(1e9)),
        ],
    };
    let feeds: Vec<SourceFeed> = app
        .sources
        .iter()
        .zip(&traces)
        .map(|(&src, t)| SourceFeed {
            source: src,
            trace: t.elements.clone(),
            rate_hz: t.rate_hz,
        })
        .collect();
    // TX CPU is outside the partitioner's cost model: zero it so the
    // simulator's relay busy time is exactly the profiled operator
    // cost, making the budget rows directly comparable to utilization.
    let sim_cfg = SimulationConfig {
        duration_s: 10.0,
        rate_multiplier: rate,
        per_packet_cpu_s: 0.0,
        ..SimulationConfig::motes(1, 7)
    };
    // Topology site ids: 1 = gw-0, 2 = ward-0, 3 = gw-1, 4 = ward-1.
    let run = |part: &DeploymentPartition, counts: [usize; 2]| {
        let routes: Vec<LeafRoute> = [(2usize, SiteId(2)), (4, SiteId(4))]
            .iter()
            .map(|&(topo_leaf, dep_leaf)| LeafRoute {
                path: vec![topo_leaf, topo_leaf - 1, 0],
                site_ops: part.leaf(dep_leaf).unwrap().site_ops.clone(),
                feeds: feeds.clone(),
            })
            .collect();
        simulate_deployment_tree(&app.graph, &mk_topo(counts), &routes, &sim_cfg)
    };

    let mut nominal_sheds_somewhere = false;
    for (ward, topo_gw) in [(0usize, 1usize), (1, 3)] {
        let mut counts = gw_counts;
        counts[ward] -= 1;
        let frail = run(&nominal, counts);
        let hardened = run(&robust, counts);
        assert_eq!(
            hardened.site_elements_dropped[topo_gw], 0,
            "robust placement saturates gw-{ward} after a single failure"
        );
        assert!(
            hardened.leaves[ward].goodput_ratio() > 0.9,
            "robust ward-{ward} goodput collapsed under a single failure: {:.3}",
            hardened.leaves[ward].goodput_ratio()
        );
        if frail.site_elements_dropped[topo_gw] > 0 {
            nominal_sheds_somewhere = true;
            assert!(
                hardened.leaves[ward].goodput_ratio() > frail.leaves[ward].goodput_ratio(),
                "robustness must buy goodput on the failure that hurts the \
                 nominal placement"
            );
        }
    }
    assert!(
        nominal_sheds_somewhere,
        "the nominal placement must saturate some surviving gateway"
    );
}

/// The nominal partition actually parks work on `g` (more than half of
/// the failure-critical band) — otherwise the instance is too easy.
fn part_uses_budget(part: &DeploymentPartition, g: SiteId, budget: f64) -> bool {
    part.site_cpu[g.0] > 0.55 * budget
}
