//! End-to-end coverage of the `wishbone-trace` observability layer:
//!
//! * the **off path** — a traced run with [`NullSink::NULL`] is
//!   byte-identical to the untraced entry point (the zero-overhead
//!   anchor; `trace_overhead` in `solver_criterion` asserts the timing
//!   side of the same claim);
//! * the **on path** — a [`MemorySink`] captures exactly one
//!   [`TraceEvent::EdgeElement`] per element per hop, per-site busy
//!   fractions, and per-operator cost samples a [`LiveProfile`] can
//!   fold;
//! * **attribution** — driving a starved gateway backhaul far past its
//!   capacity, [`attribute_tree`] names that gateway's uplink as the
//!   dominant loss;
//! * the **pinned rendering** of [`report_deployment_stats`] (every
//!   site, zeros included).

use wishbone::prelude::*;

/// Two wards of EEG caps behind asymmetric gateway backhauls: gw-a
/// (site 1) is a starved 100 B/s link, gw-b (site 2) a roomy one. The
/// caps host only their sources, so the full raw streams cross both
/// hops — deterministic saturation on gw-a's uplink with no solver in
/// the loop.
fn starved_forest() -> (
    wishbone::dataflow::Graph,
    TreeTopology,
    Vec<LeafRoute>,
    SimulationConfig,
) {
    let mut app = build_eeg_app(EegParams {
        n_channels: 2,
        ..Default::default()
    });
    let traces = app.traces(8, 3..6, 5);
    profile(&mut app.graph, &traces).expect("profiling succeeds");

    let mote = Platform::tmote_sky();
    let relay = Platform::iphone();
    let topo = TreeTopology {
        parent: vec![None, Some(0), Some(0), Some(1), Some(2)],
        platforms: vec![Platform::server(), relay.clone(), relay, mote.clone(), mote],
        counts: vec![1, 1, 1, 4, 4],
        uplink: vec![
            None,
            Some(ChannelParams::wifi(100.0)),
            Some(ChannelParams::wifi(400_000.0)),
            Some(ChannelParams::wifi(1_000_000.0)),
            Some(ChannelParams::wifi(1_000_000.0)),
        ],
    };
    let feeds: Vec<SourceFeed> = app
        .sources
        .iter()
        .zip(&traces)
        .map(|(&src, t)| SourceFeed {
            source: src,
            trace: t.elements.clone(),
            rate_hz: t.rate_hz,
        })
        .collect();
    // Caps host only the sources; gateways pure store-and-forward; the
    // rest of the program runs at the server.
    let sources: std::collections::HashSet<OperatorId> = app.sources.iter().copied().collect();
    let rest: std::collections::HashSet<OperatorId> = app
        .graph
        .operator_ids()
        .filter(|id| !sources.contains(id))
        .collect();
    let routes = vec![
        LeafRoute {
            path: vec![3, 1, 0],
            site_ops: vec![
                sources.clone(),
                std::collections::HashSet::new(),
                rest.clone(),
            ],
            feeds: feeds.clone(),
        },
        LeafRoute {
            path: vec![4, 2, 0],
            site_ops: vec![sources, std::collections::HashSet::new(), rest],
            feeds,
        },
    ];
    let cfg = SimulationConfig {
        duration_s: 5.0,
        rate_multiplier: 1.0,
        ..SimulationConfig::motes(1, 7)
    };
    (app.graph, topo, routes, cfg)
}

#[test]
fn null_sink_traced_run_is_byte_identical() {
    let (graph, topo, routes, cfg) = starved_forest();
    let bare = simulate_deployment_tree(&graph, &topo, &routes, &cfg);
    // `NullSink::NULL` is the canonical off path: `enabled()` is a
    // constant false, so the traced entry point must reproduce the
    // untraced run byte for byte.
    let mut off = NullSink::NULL;
    let traced = simulate_deployment_tree_traced(
        &graph,
        &topo,
        &routes,
        &cfg,
        &FailurePlan::default(),
        &mut off,
    );
    assert_eq!(bare, traced);
}

#[test]
fn memory_sink_captures_the_full_event_stream() {
    let (graph, topo, routes, cfg) = starved_forest();
    let mut sink = MemorySink::new();
    let sim = simulate_deployment_tree_traced(
        &graph,
        &topo,
        &routes,
        &cfg,
        &FailurePlan::default(),
        &mut sink,
    );

    let total_sent: u64 = sim
        .leaves
        .iter()
        .flat_map(|l| l.hop_elements_sent.iter())
        .sum();
    let edge_elements = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::EdgeElement { .. }))
        .count() as u64;
    assert_eq!(
        edge_elements, total_sent,
        "exactly one EdgeElement per element per hop"
    );

    let busy = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SiteBusy { .. }))
        .count();
    assert_eq!(busy, topo.len(), "one SiteBusy per site");

    let op_costs = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::OperatorCost { .. }))
        .count() as u64;
    let processed: u64 = sim.leaves.iter().map(|l| l.events_processed).sum();
    assert!(
        op_costs >= processed,
        "at least one cost sample per processed event ({op_costs} vs {processed})"
    );

    // The live profile folds the stream into per-operator estimates.
    let mut live = LiveProfile::new(0.2);
    live.fold(&sink.events);
    let sampled = routes[0].site_ops[0]
        .iter()
        .filter(|&&op| live.operator(op).is_some())
        .count();
    assert!(sampled > 0, "leaf operators collected cost samples");
}

#[test]
fn attribution_blames_the_starved_gateway_uplink() {
    let (graph, topo, routes, cfg) = starved_forest();
    let sim = simulate_deployment_tree(&graph, &topo, &routes, &cfg);
    let attr = attribute_tree(&sim, &topo);
    assert!(attr.total_lost > 0, "the starved backhaul must shed load");
    let top = attr.top().expect("losses were attributed");
    assert_eq!(top.cause, LossCause::ChannelLoss);
    assert_eq!(top.site, 1, "gw-a's uplink is the dominant loss:\n{attr}");
    assert!(top.label.contains("uplink 1->0"), "label names the link");
    assert!(top.share > 0.5, "the starved uplink dominates");
    // Shares are a distribution over the attributed losses.
    let share_sum: f64 = attr.blames.iter().map(|b| b.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
    assert_eq!(
        attr.blames.iter().map(|b| b.lost).sum::<u64>(),
        attr.total_lost
    );
}

#[test]
fn report_deployment_stats_renders_every_site_uniformly() {
    let (graph, topo, routes, cfg) = starved_forest();
    let sim = simulate_deployment_tree(&graph, &topo, &routes, &cfg);
    let rendered = report_deployment_stats(&sim, &topo);
    // Uniform shape: the aggregate line plus one line per site, zeros
    // included — failure-free runs and failure replays line up.
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 1 + topo.len());
    for (s, line) in lines[1..].iter().enumerate() {
        assert!(line.starts_with(&format!("site {s}:")), "line {s}: {line}");
        assert!(line.contains("saturation-dropped"));
        assert!(line.contains("outage-dropped"));
        if s > 0 {
            assert!(line.contains(&format!("uplink {s}->")));
        }
    }
    // And the exact bytes, pinned (the simulation is fully seeded).
    let expected = "\
32 events offered / 32 processed; 63 elements sent, 16 lost on-air, \
0 saturation-dropped, 0 outage-dropped, 8 reached the sink
site 0: busy   0.0%, saturation-dropped 0, outage-dropped 0
site 1: busy   0.2%, saturation-dropped 0, outage-dropped 0; \
uplink 1->0: 3312.0 B/s offered,   0.0% delivered, fade-dropped 0
site 2: busy   0.3%, saturation-dropped 0, outage-dropped 0; \
uplink 2->0: 3532.8 B/s offered, 100.0% delivered, fade-dropped 0
site 3: busy   0.1%, saturation-dropped 0, outage-dropped 0; \
uplink 3->1: 3532.8 B/s offered,  93.8% delivered, fade-dropped 0
site 4: busy   0.1%, saturation-dropped 0, outage-dropped 0; \
uplink 4->2: 3532.8 B/s offered, 100.0% delivered, fade-dropped 0";
    assert_eq!(rendered, expected);
}
