//! # Wishbone
//!
//! A from-scratch Rust reproduction of **"Wishbone: Profile-based
//! Partitioning for Sensornet Applications"** (Newton, Toledo, Girod,
//! Balakrishnan, Madden — NSDI 2009).
//!
//! Wishbone takes a dataflow graph of stream operators, profiles every
//! operator on sample data for each target platform, and solves an integer
//! linear program to split the graph between resource-limited embedded
//! nodes and a backend server — minimizing `α·CPU + β·NET` under hard CPU
//! and radio budgets, and binary-searching the input data rate when
//! nothing fits.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dataflow`] | `wishbone-dataflow` | operator graphs, metered work functions |
//! | [`dsp`] | `wishbone-dsp` | FFT / FIR / mel / DCT kernels + operators |
//! | [`ilp`] | `wishbone-ilp` | simplex + branch-and-bound solver |
//! | [`profile`] | `wishbone-profile` | platform cost models, graph profiler |
//! | [`net`] | `wishbone-net` | shared-channel radio simulator |
//! | [`runtime`] | `wishbone-runtime` | TinyOS-style executors, deployment sim |
//! | [`core`] | `wishbone-core` | the partitioner itself |
//! | [`apps`] | `wishbone-apps` | speech-MFCC and EEG applications |
//! | [`audit`] | `wishbone-audit` | static analyzer for encoded ILPs |
//! | [`trace`] | `wishbone-trace` | streaming telemetry, drift detection, loss attribution |
//! | [`fleet`] | `wishbone-fleet` | sharded, shape-cached fleet partitioning service |
//!
//! ## Quickstart
//!
//! ```
//! use wishbone::prelude::*;
//!
//! // Build the paper's speech-detection pipeline and profile it.
//! let mut app = build_speech_app(SpeechParams::default());
//! let trace = app.trace(40, 1);
//! let prof = profile(&mut app.graph, &[trace]).unwrap();
//!
//! // Partition it for a TMote Sky at 1/8 of the full 8 kHz rate.
//! let mote = Platform::tmote_sky();
//! let cfg = PartitionConfig::for_platform(&mote).at_rate(0.125);
//! let part = partition(&app.graph, &prof, &mote, &cfg).unwrap();
//! assert!(part.node_ops.contains(&app.source));
//! assert!(part.predicted_cpu <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wishbone_apps as apps;
pub use wishbone_audit as audit;
pub use wishbone_core as core;
pub use wishbone_dataflow as dataflow;
pub use wishbone_dsp as dsp;
pub use wishbone_fleet as fleet;
pub use wishbone_ilp as ilp;
pub use wishbone_net as net;
pub use wishbone_profile as profile;
pub use wishbone_runtime as runtime;
pub use wishbone_trace as trace;

/// The names most programs need, re-exported flat.
pub mod prelude {
    pub use crate::{report_deployment_stats, report_fleet_stats, report_sim_stats, report_stats};
    pub use wishbone_apps::{
        build_eeg_app, build_eeg_channel, build_speech_app, heuristic_svm, EegApp, EegParams,
        LinearSvm, SpeechApp, SpeechParams,
    };
    pub use wishbone_audit::{AuditCode, AuditReport, Diagnostic, Severity};
    pub use wishbone_core::{
        all_node, all_server, build_partition_graph, drift_to_deltas, evaluate, greedy,
        max_sustainable_rate, max_sustainable_rate_deployment, max_sustainable_rate_multitier,
        partition, partition_approx, partition_deployment, partition_multitier, pin_analysis,
        pipeline_cutpoints, preprocess, ApproxCut, Deployment, DeploymentConfig, DeploymentDelta,
        DeploymentPartition, DeploymentRateResult, Encoding, LeafPartition, LinkSpec, Mode,
        MultiTierConfig, MultiTierPartition, MultiTierRateResult, ObjectiveConfig, Partition,
        PartitionConfig, PartitionError, PartitionGraph, Pin, PlacementEngine, PreparedDeployment,
        PreparedMultiTier, PreparedPartition, RateSearchResult, RobustnessMode, Site, SiteId,
        TierSpec, UnprovenRate,
    };
    pub use wishbone_core::{deltas_between, shape_key, ShapeKey};
    pub use wishbone_dataflow::{
        Graph, GraphBuilder, Namespace, OperatorId, OperatorKind, OperatorSpec, Value, WorkFn,
    };
    pub use wishbone_fleet::{
        run_batch, FleetConfig, FleetRequest, FleetResponse, FleetServer, FleetStats, ShapeCache,
    };
    pub use wishbone_ilp::{IlpOptions, PhaseTimes, Problem, Sense, SolverBackend};
    pub use wishbone_net::{profile_network, Channel, ChannelParams, PacketFormat};
    pub use wishbone_profile::{profile, GraphProfile, Platform, SourceTrace};
    pub use wishbone_runtime::{
        attribute_tree, simulate_deployment, simulate_deployment_multi, simulate_deployment_tree,
        simulate_deployment_tree_traced, simulate_deployment_tree_with_failures,
        simulate_tiered_deployment, DeploymentReport, Failure, FailurePlan, LeafFlowReport,
        LeafRoute, OutageReport, RelayExecutor, SimStats, SimulationConfig, SourceFeed, TaskModel,
        TieredDeploymentReport, TreeDeploymentReport, TreeTopology,
    };
    pub use wishbone_trace::{
        AttributionReport, Blame, DriftConfig, DriftDetector, DriftReport, EdgeDrift, EdgeEstimate,
        LiveProfile, LossCause, MemorySink, NullSink, OperatorDrift, OperatorEstimate, TraceEvent,
        TraceSink,
    };
}

/// One consistent solver-statistics line for the examples: which simplex
/// backend ran, how many branch-and-bound nodes it took, the warm/cold
/// node-LP split, and where the wall clock went phase by phase (the
/// numbers a `BENCH_solver.json` regression should be explainable
/// from). `encode` is stamped only by prepared pipelines — a direct
/// `solve_ilp` call reports it as zero because the caller encoded
/// separately.
pub fn report_stats(stats: &ilp::IlpStats) -> String {
    format!(
        "{:?} backend, {} B&B nodes ({} warm / {} cold LPs); \
         phases: encode {:.1}ms, presolve {:.1}ms, warm-start {:.1}ms, nodes {:.1}ms",
        stats.backend,
        stats.nodes,
        stats.warm_starts,
        stats.cold_starts,
        stats.phase_times.encode_s * 1e3,
        stats.phase_times.presolve_s * 1e3,
        stats.phase_times.warm_start_s * 1e3,
        stats.phase_times.nodes_s * 1e3,
    )
}

/// One consistent fleet-statistics block: request volume, cache
/// leverage (hits, misses, encodes avoided), shard balance, latency
/// percentiles, and the aggregated per-phase wall clock across every
/// worker — the fleet-scale view of what [`report_stats`] shows for one
/// solve.
pub fn report_fleet_stats(stats: &fleet::FleetStats) -> String {
    format!(
        "{} requests over {} shapes: {} cache hits / {} misses ({} encodes avoided), {} errors\n\
         per-worker solves: {:?}\n\
         latency p50 {:.2}ms, p99 {:.2}ms\n\
         phases (fleet-wide): encode {:.1}ms, presolve {:.1}ms, warm-start {:.1}ms, nodes {:.1}ms",
        stats.requests,
        stats.distinct_shapes,
        stats.cache_hits,
        stats.cache_misses,
        stats.encodes_avoided,
        stats.errors,
        stats.per_worker_solves,
        stats.p50_s() * 1e3,
        stats.p99_s() * 1e3,
        stats.phase_times.encode_s * 1e3,
        stats.phase_times.presolve_s * 1e3,
        stats.phase_times.warm_start_s * 1e3,
        stats.phase_times.nodes_s * 1e3,
    )
}

/// One consistent simulation-statistics line for the examples: what the
/// tree simulator offered, processed, and delivered, and where the rest
/// went (channel contention, relay saturation, failure outages).
pub fn report_sim_stats(stats: &runtime::SimStats) -> String {
    format!(
        "{} events offered / {} processed; {} elements sent, {} lost on-air, \
         {} saturation-dropped, {} outage-dropped, {} reached the sink",
        stats.events_offered,
        stats.events_processed,
        stats.elements_sent,
        stats.channel_lost,
        stats.saturation_dropped,
        stats.outage_dropped,
        stats.sink_arrivals
    )
}

/// The per-site view [`report_sim_stats`]'s aggregate line cannot show:
/// every site's busy fraction, saturation drops, and outage-attributed
/// drops, rendered uniformly (zeros included, so failure-free runs and
/// failure replays line up column for column), plus each non-root site's
/// uplink load, delivery ratio, and fade drops. Pinned by
/// `tests/observability.rs`.
pub fn report_deployment_stats(
    report: &runtime::TreeDeploymentReport,
    topo: &runtime::TreeTopology,
) -> String {
    let mut out = report_sim_stats(&report.stats());
    for s in 0..topo.len() {
        out.push_str(&format!(
            "\nsite {s}: busy {:5.1}%, saturation-dropped {}, outage-dropped {}",
            report.site_cpu_utilization[s] * 100.0,
            report.site_elements_dropped[s],
            report.site_outage_dropped[s],
        ));
        if let Some(parent) = topo.parent[s] {
            out.push_str(&format!(
                "; uplink {s}->{parent}: {:.1} B/s offered, {:5.1}% delivered, fade-dropped {}",
                report.edge_offered_load_bytes_per_sec[s],
                report.edge_packet_delivery_ratio[s] * 100.0,
                report.edge_outage_dropped[s],
            ));
        }
    }
    out
}
